#!/usr/bin/env python3
"""Selftest for the dtsa static analyzer: pins every rule against its seeded
fixture under tests/dtsa_fixtures/.

The analyzer must report EXACTLY the expected (rule, file, line) set over the
fixture tree — no extras, no misses, stable line numbers — with clean.cpp (a
file of deliberate lexer near-misses) and suppressed.cpp (every violation
NOLINT-DT'ed) contributing zero findings. On top of the finding pins it
checks the properties the ISSUE puts in the acceptance wall:

  * output is byte-identical across runs and across --jobs values,
  * the suppressed count and summary line are exact,
  * --sarif emits SARIF 2.1 that passes tools/check_sarif.py,
  * every rule advertised by --list-rules is covered by a fixture finding.

Usage: dtsa_selftest.py --binary PATH [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_ROOT = HERE.parent.parent
FIXTURES = pathlib.Path("tests") / "dtsa_fixtures"

sys.path.insert(0, str(HERE.parent))
from check_sarif import check_file  # noqa: E402

# Exact expected finding set over the whole fixture tree. Line numbers are
# part of the contract: a drifting line means a fixture or the analyzer
# changed, and the expectation must be re-verified, not silently re-matched.
EXPECTED: set[tuple[str, str, int]] = {
    ("blocking-under-lock", "bad_blocking.cpp", 20),
    ("blocking-under-lock", "bad_blocking.cpp", 26),
    ("blocking-under-lock", "bad_blocking.cpp", 36),
    ("blocking-under-lock", "bad_blocking.cpp", 42),
    ("unbounded-decode-reach", "bad_decode_reach.cpp", 12),
    ("unbounded-decode-reach", "bad_decode_reach.cpp", 16),
    ("alloc-in-hot-path", "bad_hot_alloc.cpp", 12),
    ("alloc-in-hot-path", "bad_hot_alloc.cpp", 17),
    ("lock-order-consistency", "bad_lock_order.cpp", 15),
    ("lock-order-consistency", "bad_lock_order.cpp", 32),
    ("stream-reach", "bad_stream_reach.cpp", 12),
    ("stream-reach", "bad_stream_reach.cpp", 16),
}
EXPECTED_SUPPRESSED = 7
# Files that must contribute zero findings: the near-miss file and the
# fully-suppressed file (plus the blessed/in-family helpers).
MUST_BE_CLEAN = {"clean.cpp", "suppressed.cpp", "cli/fixture_render.cpp", "compress/fixture_codec.cpp"}

FINDING_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z0-9-]+)\] (?P<msg>.*)$")
SUMMARY_RE = re.compile(
    r"^dtsa: (?P<findings>\d+) finding\(s\), (?P<suppressed>\d+) suppressed, "
    r"\d+ function\(s\) in \d+ file\(s\)$"
)


def run_dtsa(binary: pathlib.Path, root: pathlib.Path, *extra: str) -> tuple[int, str]:
    proc = subprocess.run(
        [str(binary), "--root", str(root / FIXTURES), *extra],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode not in (0, 1):
        raise RuntimeError(f"dtsa crashed (exit {proc.returncode}):\n{proc.stderr}")
    return proc.returncode, proc.stdout


def parse_findings(output: str) -> tuple[set[tuple[str, str, int]], int | None]:
    got: set[tuple[str, str, int]] = set()
    suppressed: int | None = None
    for line in output.splitlines():
        if m := FINDING_RE.match(line):
            got.add((m["rule"], m["file"], int(m["line"])))
        elif m := SUMMARY_RE.match(line):
            suppressed = int(m["suppressed"])
    return got, suppressed


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="path to the dtsa executable")
    parser.add_argument("--root", default=str(DEFAULT_ROOT), help="repo root containing tests/dtsa_fixtures")
    args = parser.parse_args(argv)
    binary = pathlib.Path(args.binary).resolve()
    root = pathlib.Path(args.root).resolve()
    failures: list[str] = []

    code, out = run_dtsa(binary, root)
    got, suppressed = parse_findings(out)
    if got != EXPECTED:
        missed = EXPECTED - got
        extra = got - EXPECTED
        if missed:
            failures.append(f"missed findings: {sorted(missed)}")
        if extra:
            failures.append(f"extra findings: {sorted(extra)}")
    if code != 1:
        failures.append(f"fixture tree: exit {code}, expected 1 (findings present)")
    if suppressed != EXPECTED_SUPPRESSED:
        failures.append(f"suppressed count {suppressed}, expected {EXPECTED_SUPPRESSED}")
    dirty = {f for _, f, _ in got} & MUST_BE_CLEAN
    if dirty:
        failures.append(f"files that must be clean had findings: {sorted(dirty)}")

    # Determinism wall: byte-identical across runs and across --jobs values.
    for jobs in ("1", "2", "8"):
        code_j, out_j = run_dtsa(binary, root, "--jobs", jobs)
        if out_j != out or code_j != code:
            failures.append(f"--jobs {jobs}: output differs from the default run")

    # Single-file scan of the near-miss file must be clean and exit 0.
    code_clean, out_clean = run_dtsa(binary, root, "clean.cpp")
    clean_got, _ = parse_findings(out_clean)
    if clean_got or code_clean != 0:
        failures.append(f"clean.cpp: exit {code_clean}, findings {sorted(clean_got)}")

    # SARIF wall: emitted file validates and mirrors the text findings.
    with tempfile.TemporaryDirectory(prefix="dtsa_selftest_") as tmp:
        sarif_path = pathlib.Path(tmp) / "dtsa.sarif"
        run_dtsa(binary, root, "--sarif", str(sarif_path))
        errors = check_file(sarif_path)
        if errors:
            failures.append(f"SARIF validation failed: {errors}")
        else:
            doc = json.loads(sarif_path.read_text(encoding="utf-8"))
            results = {
                (
                    res["ruleId"],
                    res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
                    res["locations"][0]["physicalLocation"]["region"]["startLine"],
                )
                for run in doc["runs"]
                for res in run.get("results", [])
            }
            if results != EXPECTED:
                failures.append("SARIF results do not mirror the text findings")

    # Every advertised rule must be exercised by a fixture finding, so a new
    # rule cannot land without a seeded true positive.
    list_proc = subprocess.run(
        [str(binary), "--list-rules"], capture_output=True, text=True, check=True
    )
    advertised = {
        line.split()[0].rstrip(":") for line in list_proc.stdout.splitlines() if line.strip()
    }
    uncovered = advertised - {rule for rule, _, _ in EXPECTED}
    if uncovered:
        failures.append(f"rules with no seeded fixture violation: {sorted(uncovered)}")

    if failures:
        print("dtsa_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"dtsa_selftest: OK ({len(EXPECTED)} findings pinned, "
        f"{EXPECTED_SUPPRESSED} suppressions, {len(advertised)} rules covered)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
