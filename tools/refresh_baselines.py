#!/usr/bin/env python3
"""Refresh the committed BENCH_*.json perf baselines.

Thin driver over tools/perf_gate.py --write-baseline: reruns each bench
generator --repeat times and replaces the baseline with the median-of-runs
manifest. Run this after an intentional performance change (and say so in
the commit), then re-run the gate to confirm the new baselines are
self-consistent:

  python3 tools/refresh_baselines.py --build-dir build [--repeat 3]
  python3 tools/perf_gate.py --bench build/bench/perf_sweep \
      --baseline BENCH_sweep.json --difftrace build/tools/difftrace

Baselines are medians from *one* machine — the CI gate compensates with
generous thresholds (see .github/workflows/ci.yml), so refreshing on a
laptop is fine; refreshing on CI hardware is better.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

BASELINES = {
    "BENCH_sweep.json": "bench/perf_sweep",
    "BENCH_check.json": "bench/perf_check",
    "BENCH_matrix.json": "bench/perf_matrix",
    "BENCH_serve.json": "bench/perf_serve",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build", help="CMake build directory")
    parser.add_argument("--repeat", type=int, default=3, help="runs per baseline (median-of-N)")
    parser.add_argument("--only", action="append", default=[], metavar="BENCH_FILE",
                        help="refresh just this baseline (repeatable)")
    args = parser.parse_args()

    tools = Path(__file__).resolve().parent
    repo = tools.parent
    build = Path(args.build_dir)
    failures = 0
    for baseline, bench in BASELINES.items():
        if args.only and baseline not in args.only:
            continue
        bench_bin = build / bench
        if not bench_bin.exists():
            sys.stderr.write(f"refresh_baselines: {bench_bin} not built, skipping\n")
            failures += 1
            continue
        print(f"refresh_baselines: {baseline} <- median of {args.repeat} x {bench_bin}")
        code = subprocess.run(
            [sys.executable, str(tools / "perf_gate.py"),
             "--bench", str(bench_bin),
             "--write-baseline", str(repo / baseline),
             "--repeat", str(args.repeat),
             "--out-dir", str(build / "perf-gate-refresh")],
            check=False).returncode
        if code != 0:
            sys.stderr.write(f"refresh_baselines: {baseline} failed (exit {code})\n")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
