#!/usr/bin/env bash
# Runs cppcheck over the difftrace sources in project mode, driven by the
# compile database CMake exports (-DCMAKE_EXPORT_COMPILE_COMMANDS=ON), so
# every TU is analyzed with its real include paths and defines. Findings
# are errors (--error-exitcode=1); intentional deviations live in
# tools/cppcheck-suppressions.txt with a reason per entry, or inline as
# `// cppcheck-suppress <id>` next to the code they excuse.
#
# Usage: tools/run_cppcheck.sh [BUILD_DIR]   (default: build)
#
# Skips with exit 0 when cppcheck is not installed — developer machines
# and the test container need not carry it; the CI static-analysis job
# installs it and is the enforcing run.
set -euo pipefail

build_dir="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v cppcheck >/dev/null 2>&1; then
  echo "run_cppcheck: cppcheck not installed; skipping (CI enforces this check)" >&2
  exit 0
fi

db="$root/$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "run_cppcheck: no compile database at $db" >&2
  echo "run_cppcheck: configure with cmake -B $build_dir -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# --file-filter scopes the run to the project's own sources: the database
# also lists tests/ and bench/ TUs, which lean on gtest/benchmark macro
# internals that cppcheck misparses.
exec cppcheck \
  --project="$db" \
  --file-filter="*src/*" \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list="$root/tools/cppcheck-suppressions.txt" \
  --quiet \
  --error-exitcode=1
