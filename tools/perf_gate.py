#!/usr/bin/env python3
"""CI perf-regression gate over difftrace run manifests.

Runs a bench generator (any command accepting --json=FILE, e.g.
`perf_sweep --json`) N times, merges the runs into a median-of-runs
manifest (per-phase / per-counter medians, so one noisy scheduler hiccup
cannot fail the gate or sneak a regression past it), then asks
`difftrace perf diff` to compare the committed baseline against the
median with CI-grade thresholds. Artifacts — every raw run, the merged
median, the machine-readable diff, and a chrome://tracing export of the
median — land in --out-dir for upload.

Usage:
  tools/perf_gate.py --bench "build/bench/perf_sweep" --baseline BENCH_sweep.json \
      --difftrace build/tools/difftrace [--repeat 3] [--rel-threshold 3.0] \
      [--abs-floor-ms 20] [--out-dir perf-gate]
  tools/perf_gate.py --bench ... --write-baseline BENCH_sweep.json
      (refresh mode: write the median manifest as the new baseline, no diff)

Exit code: 0 clean, 3 sustained regression (difftrace's own gate code),
1 on operational failure (bench crashed, unreadable manifests).
"""

from __future__ import annotations

import argparse
import json
import shlex
import statistics
import subprocess
import sys
from pathlib import Path


def run_bench(cmd: list[str], json_path: Path, out_dir: Path, rep: int) -> dict:
    full = cmd + [f"--json={json_path}"]
    log_path = out_dir / f"run{rep}.log"
    with open(log_path, "w", encoding="utf-8") as log:
        proc = subprocess.run(full, stdout=log, stderr=subprocess.STDOUT, check=False)
    if proc.returncode != 0:
        sys.stderr.write(f"perf_gate: rep {rep}: '{shlex.join(full)}' exited "
                         f"{proc.returncode} (see {log_path})\n")
        raise SystemExit(1)
    try:
        with open(json_path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"perf_gate: rep {rep}: cannot read manifest: {e}\n")
        raise SystemExit(1)


def median_merge(runs: list[dict]) -> dict:
    """First run as the skeleton, per-phase/per-counter medians across runs.

    A phase or counter missing from some run contributes only the values it
    has — phase structure comes from the first run (the bench is
    deterministic; only timings vary rep to rep).
    """
    merged = json.loads(json.dumps(runs[0]))
    for kind, key_field, value_fields in (
        ("phases", "path", ("wall_ns", "cpu_ns")),
        ("counters", "name", ("value",)),
    ):
        by_key: dict[str, list[dict]] = {}
        for run in runs:
            for entry in run.get(kind, []):
                by_key.setdefault(entry[key_field], []).append(entry)
        for entry in merged.get(kind, []):
            samples = by_key.get(entry[key_field], [])
            for field in value_fields:
                values = [s[field] for s in samples if field in s]
                if values:
                    entry[field] = int(statistics.median(values))
    for field in ("wall_ns", "cpu_ns"):
        values = [run[field] for run in runs if field in run]
        if values:
            merged[field] = int(statistics.median(values))
    return merged


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="bench command accepting --json=FILE (shell-quoted)")
    parser.add_argument("--difftrace", default="build/tools/difftrace",
                        help="difftrace binary for perf diff / perf export")
    parser.add_argument("--baseline", help="committed baseline manifest to diff against")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the median manifest to FILE and skip the diff")
    parser.add_argument("--repeat", type=int, default=3, help="bench repetitions (median-of-N)")
    parser.add_argument("--rel-threshold", type=float, default=3.0,
                        help="relative wall-time threshold passed to perf diff")
    parser.add_argument("--abs-floor-ms", type=float, default=20.0,
                        help="absolute floor passed to perf diff")
    parser.add_argument("--out-dir", default="perf-gate", help="artifact directory")
    args = parser.parse_args()

    if bool(args.baseline) == bool(args.write_baseline):
        parser.error("exactly one of --baseline / --write-baseline is required")
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    bench_cmd = shlex.split(args.bench)

    runs = [run_bench(bench_cmd, out_dir / f"run{rep}.json", out_dir, rep)
            for rep in range(args.repeat)]
    median = median_merge(runs)
    median_path = out_dir / "median.json"
    with open(median_path, "w", encoding="utf-8") as f:
        json.dump(median, f, indent=1)
        f.write("\n")

    if args.write_baseline:
        # Baselines are repo-committed and diffed against other machines'
        # runs: drop the machine-local artifact pointers.
        median["self_trace"] = ""
        median["cache_dir"] = ""
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(median, f, indent=1)
            f.write("\n")
        print(f"perf_gate: baseline written to {args.write_baseline} "
              f"(median of {args.repeat} run(s))")
        return 0

    export = subprocess.run(
        [args.difftrace, "perf", "export", str(median_path),
         "--out", str(out_dir / "median.trace.json")],
        check=False)
    if export.returncode != 0:
        sys.stderr.write("perf_gate: chrome export failed\n")
        return 1

    diff_cmd = [args.difftrace, "perf", "diff", args.baseline, str(median_path),
                "--no-selftrace", "--rel-threshold", str(args.rel_threshold),
                "--abs-floor-ms", str(args.abs_floor_ms)]
    # Human-readable verdict to the CI log, machine-readable to the artifacts.
    text = subprocess.run(diff_cmd, check=False)
    with open(out_dir / "perfdiff.json", "w", encoding="utf-8") as f:
        machine = subprocess.run(diff_cmd + ["--json"], stdout=f, check=False)
    if text.returncode != machine.returncode:
        sys.stderr.write("perf_gate: text and json diff disagree on the verdict\n")
        return 1
    if text.returncode not in (0, 3):
        sys.stderr.write(f"perf_gate: perf diff failed with exit {text.returncode}\n")
        return 1
    return text.returncode


if __name__ == "__main__":
    sys.exit(main())
