#!/usr/bin/env python3
"""Offline SARIF 2.1 validator shared by dtsa and difftrace_lint.

Validates the subset of SARIF 2.1 both producers emit against an embedded
JSON Schema (via jsonschema when available, hand-rolled structural checks
otherwise), plus the cross-reference rules a schema cannot express:

  * version is exactly "2.1.0" and $schema names the 2.1.0 schema,
  * every result.ruleId is declared in tool.driver.rules,
  * every physical location has a uri and a positive startLine.

Usage: check_sarif.py FILE [FILE...]
"""

from __future__ import annotations

import json
import pathlib
import sys

# A faithful subset of the SARIF 2.1.0 schema: everything dtsa and the lint
# --sarif writer emit, with the properties SARIF marks required.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string", "minLength": 1},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string", "minLength": 1},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {"text": {"type": "string"}},
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string", "minLength": 1},
                                "level": {"enum": ["none", "note", "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                        "properties": {
                                                            "uri": {"type": "string", "minLength": 1}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _structural_errors(doc: object) -> list[str]:
    """Schema validation: jsonschema when present, minimal checks otherwise."""
    try:
        import jsonschema  # noqa: PLC0415 - optional, image-provided

        validator = jsonschema.Draft7Validator(SARIF_SCHEMA)
        return [
            f"{'/'.join(str(p) for p in err.absolute_path) or '<root>'}: {err.message}"
            for err in sorted(validator.iter_errors(doc), key=str)
        ]
    except ImportError:
        errors: list[str] = []
        if not isinstance(doc, dict):
            return ["<root>: not an object"]
        if doc.get("version") != "2.1.0":
            errors.append("version: expected '2.1.0'")
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            return errors + ["runs: expected a non-empty array"]
        for i, run in enumerate(runs):
            driver = run.get("tool", {}).get("driver", {}) if isinstance(run, dict) else {}
            if not driver.get("name"):
                errors.append(f"runs/{i}: missing tool.driver.name")
            for j, res in enumerate(run.get("results", []) if isinstance(run, dict) else []):
                if not isinstance(res, dict) or not res.get("ruleId"):
                    errors.append(f"runs/{i}/results/{j}: missing ruleId")
                if not isinstance(res, dict) or "text" not in res.get("message", {}):
                    errors.append(f"runs/{i}/results/{j}: missing message.text")
        return errors


def _semantic_errors(doc: dict) -> list[str]:
    """Cross-reference rules the schema cannot express."""
    errors: list[str] = []
    schema_url = doc.get("$schema", "")
    if "sarif" not in schema_url or "2.1.0" not in schema_url:
        errors.append(f"$schema: does not name the SARIF 2.1.0 schema ({schema_url!r})")
    for i, run in enumerate(doc.get("runs", [])):
        declared = {r.get("id") for r in run.get("tool", {}).get("driver", {}).get("rules", [])}
        for j, res in enumerate(run.get("results", [])):
            rule = res.get("ruleId")
            if declared and rule not in declared:
                errors.append(f"runs/{i}/results/{j}: ruleId {rule!r} not declared in driver.rules")
            for k, loc in enumerate(res.get("locations", [])):
                phys = loc.get("physicalLocation", {})
                if not phys.get("artifactLocation", {}).get("uri"):
                    errors.append(f"runs/{i}/results/{j}/locations/{k}: missing artifact uri")
                start = phys.get("region", {}).get("startLine")
                if not isinstance(start, int) or start < 1:
                    errors.append(f"runs/{i}/results/{j}/locations/{k}: bad startLine {start!r}")
    return errors


def check_file(path: pathlib.Path) -> list[str]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    errors = _structural_errors(doc)
    if isinstance(doc, dict):
        errors.extend(_semantic_errors(doc))
    return errors


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    status = 0
    for name in argv:
        path = pathlib.Path(name)
        errors = check_file(path)
        if errors:
            status = 1
            print(f"check_sarif: {path}: FAIL", file=sys.stderr)
            for err in errors:
                print(f"  {err}", file=sys.stderr)
        else:
            doc = json.loads(path.read_text(encoding="utf-8"))
            results = sum(len(run.get("results", [])) for run in doc.get("runs", []))
            print(f"check_sarif: {path}: OK ({results} result(s))")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
