#!/usr/bin/env python3
"""Validate a difftrace run manifest against schema version 1.

The manifest is the machine-readable record a run writes under
`--stats=FILE` (and the format of the BENCH_*.json files produced by
`perf_sweep --json`). The schema is documented in DESIGN.md
("Observability") and mirrored by obs::RunManifest. CI runs this over the
manifest of the oddeven walkthrough so the telemetry contract — stable
field names and types, phases that actually account for the run — is
enforced, not just described.

Usage: tools/check_manifest.py MANIFEST.json
           [--min-coverage 0.95] [--require-counter NAME ...]
       tools/check_manifest.py SESSION.jsonl --serve [--expect-ids q1,q2,...]
Exit code: 0 when the manifest validates, 1 otherwise (problems on stderr).

`--serve` switches to the resident-service contract: the input is a
line-delimited transcript of `difftrace serve` responses (one JSON object
per line, e.g. collected with `difftrace query --raw`), each carrying
`serve_version`, the request_id echo, and the shared RunManifest fields.

Stdlib only — no third-party JSON-schema machinery.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

CRC32_RE = re.compile(r"^[0-9a-f]{8}$")
PHASE_PATH_RE = re.compile(r"^[^/]+(/[^/]+)*$")


class Problems:
    def __init__(self) -> None:
        self.messages: list[str] = []

    def add(self, message: str) -> None:
        self.messages.append(message)

    def expect(self, obj: dict, key: str, kinds, where: str) -> object:
        """Checks obj[key] exists with one of `kinds`; returns it (or None)."""
        if key not in obj:
            self.add(f"{where}: missing key '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, kinds) or isinstance(value, bool) and kinds is not bool:
            self.add(f"{where}: '{key}' has type {type(value).__name__}")
            return None
        return value


def check_phases(phases: list, problems: Problems) -> None:
    for i, phase in enumerate(phases):
        where = f"phases[{i}]"
        if not isinstance(phase, dict):
            problems.add(f"{where}: not an object")
            continue
        path = problems.expect(phase, "path", str, where)
        name = problems.expect(phase, "name", str, where)
        depth = problems.expect(phase, "depth", int, where)
        count = problems.expect(phase, "count", int, where)
        problems.expect(phase, "wall_ns", int, where)
        problems.expect(phase, "cpu_ns", int, where)
        if path is not None and not PHASE_PATH_RE.match(path):
            problems.add(f"{where}: malformed path '{path}'")
        if path is not None and name is not None and not path.endswith(name):
            problems.add(f"{where}: name '{name}' is not the tail of path '{path}'")
        if path is not None and depth is not None and path.count("/") != depth:
            problems.add(f"{where}: depth {depth} disagrees with path '{path}'")
        if count is not None and count < 1:
            problems.add(f"{where}: count {count} < 1")


def phase_coverage(phases: list) -> float:
    """Mirror of obs::RunManifest::phase_coverage: the fraction of the
    largest depth-0 phase's wall time covered by its direct children."""
    roots = [p for p in phases if isinstance(p, dict) and p.get("depth") == 0]
    if not roots:
        return 1.0
    root = max(roots, key=lambda p: p.get("wall_ns", 0))
    if not root.get("wall_ns"):
        return 1.0
    prefix = root["path"] + "/"
    children_wall = sum(
        p.get("wall_ns", 0)
        for p in phases
        if isinstance(p, dict) and p.get("depth") == 1 and str(p.get("path", "")).startswith(prefix)
    )
    if not any(
        isinstance(p, dict) and p.get("depth") == 1 and str(p.get("path", "")).startswith(prefix)
        for p in phases
    ):
        return 1.0
    return children_wall / root["wall_ns"]


def check_manifest(doc: object, min_coverage: float, required_counters: list[str]) -> list[str]:
    problems = Problems()
    if not isinstance(doc, dict):
        return ["document root is not an object"]

    version = problems.expect(doc, "manifest_version", int, "manifest")
    if version is not None and version != 1:
        problems.add(f"manifest: unsupported manifest_version {version}")
    problems.expect(doc, "tool_version", str, "manifest")
    problems.expect(doc, "exit_code", int, "manifest")
    problems.expect(doc, "wall_ns", int, "manifest")
    problems.expect(doc, "cpu_ns", int, "manifest")
    problems.expect(doc, "peak_rss_kb", int, "manifest")

    # Execution-engine fields are additive (schema stays v1): absent in
    # manifests written before the scheduler existed, typed when present.
    for key, kinds in (
        ("jobs", int),
        ("cache_dir", str),
        ("cache_hits", int),
        ("cache_misses", int),
        ("check_engine", str),
        ("summary_cache_hits", int),
        ("summary_cache_misses", int),
        ("self_trace", str),
    ):
        if key in doc:
            problems.expect(doc, key, kinds, "manifest")
    engine = doc.get("check_engine")
    if isinstance(engine, str) and engine not in ("", "replay", "summary", "auto"):
        problems.add(f"manifest: check_engine '{engine}' is not one of replay/summary/auto")

    command = problems.expect(doc, "command", list, "manifest")
    if command is not None and not all(isinstance(c, str) for c in command):
        problems.add("manifest: command entries must be strings")

    inputs = problems.expect(doc, "inputs", list, "manifest")
    for i, entry in enumerate(inputs or []):
        where = f"inputs[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(entry, "path", str, where)
        problems.expect(entry, "bytes", int, where)
        problems.expect(entry, "ok", bool, where)
        crc = problems.expect(entry, "crc32", str, where)
        if crc is not None and not CRC32_RE.match(crc):
            problems.add(f"{where}: crc32 '{crc}' is not 8 lowercase hex digits")

    phases = problems.expect(doc, "phases", list, "manifest")
    if phases is not None:
        check_phases(phases, problems)
        coverage = phase_coverage(phases)
        if coverage < min_coverage:
            problems.add(
                f"manifest: phase coverage {coverage:.3f} below required {min_coverage:.3f}"
            )

    counters = problems.expect(doc, "counters", list, "manifest")
    counter_names = set()
    for i, entry in enumerate(counters or []):
        where = f"counters[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        name = problems.expect(entry, "name", str, where)
        value = problems.expect(entry, "value", int, where)
        if name is not None:
            counter_names.add(name)
        if value is not None and value == 0:
            problems.add(f"{where}: zero-valued counter '{name}' (schema emits nonzero only)")
    for name in required_counters:
        if name not in counter_names:
            problems.add(f"manifest: required counter '{name}' missing or zero")

    histograms = problems.expect(doc, "histograms", list, "manifest")
    for i, entry in enumerate(histograms or []):
        where = f"histograms[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(entry, "name", str, where)
        problems.expect(entry, "count", int, where)
        problems.expect(entry, "sum", int, where)
        buckets = problems.expect(entry, "buckets", list, where)
        for j, bucket in enumerate(buckets or []):
            bwhere = f"{where}.buckets[{j}]"
            if not isinstance(bucket, dict):
                problems.add(f"{bwhere}: not an object")
                continue
            problems.expect(bucket, "le_log2", int, bwhere)
            problems.expect(bucket, "count", int, bwhere)

    return problems.messages


SERVE_OPS = ("ingest", "list", "rank", "check", "diff", "stats", "shutdown")


def check_serve_response(doc: object, where: str, expect_ids: list[str] | None,
                         index: int) -> list[str]:
    """Validate one serve protocol response object (serve::Response)."""
    problems = Problems()
    if not isinstance(doc, dict):
        return [f"{where}: not an object"]

    version = problems.expect(doc, "serve_version", int, where)
    if version is not None and version != 1:
        problems.add(f"{where}: unsupported serve_version {version}")

    request_id = problems.expect(doc, "request_id", str, where)
    if request_id == "":
        problems.add(f"{where}: request_id must echo the request (empty)")
    if expect_ids is not None and index < len(expect_ids):
        if request_id is not None and request_id != expect_ids[index]:
            problems.add(
                f"{where}: request_id '{request_id}' != expected '{expect_ids[index]}'"
            )

    status = problems.expect(doc, "status", str, where)
    if status is not None and status not in ("ok", "error"):
        problems.add(f"{where}: status '{status}' is not ok/error")

    op = problems.expect(doc, "op", str, where)
    if op is not None and op not in SERVE_OPS:
        # An unparseable request cannot echo an op; that is only legal on an
        # error response.
        if not (op == "" and status == "error"):
            problems.add(f"{where}: unknown op '{op}'")

    exit_code = problems.expect(doc, "exit_code", int, where)
    if status == "error" and exit_code == 0:
        problems.add(f"{where}: status 'error' with exit_code 0")
    if status == "error":
        error = problems.expect(doc, "error", str, where)
        if error == "":
            problems.add(f"{where}: status 'error' but 'error' message is empty")
    elif "error" in doc:
        problems.add(f"{where}: status 'ok' must omit the 'error' field")

    # Shared RunManifest v1 fields: same names, same types as --stats output.
    problems.expect(doc, "tool_version", str, where)
    command = problems.expect(doc, "command", list, where)
    if command is not None and not all(isinstance(c, str) for c in command):
        problems.add(f"{where}: command entries must be strings")
    for key in ("wall_ns", "cpu_ns", "peak_rss_kb"):
        value = problems.expect(doc, key, int, where)
        if value is not None and value < 0:
            problems.add(f"{where}: {key} {value} is negative")

    problems.expect(doc, "output", str, where)
    problems.expect(doc, "chatter", str, where)
    # Op-specific extras ("run", "runs", "serve", ...) are inlined as extra
    # top-level keys; their schemas are additive and not pinned here.
    return problems.messages


def check_serve(path: str, expect_ids: list[str] | None) -> tuple[list[str], int]:
    """Validate a line-delimited serve session transcript. Each line must be
    one complete JSON response object (the framing IS the contract: a reply
    that spills across lines breaks every line-oriented client)."""
    problems: list[str] = []
    responses = 0
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"cannot read {path}: {e}"], 0
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        if not line.strip():
            problems.append(f"{where}: blank line inside a response stream")
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"{where}: not valid JSON ({e})")
            continue
        problems.extend(check_serve_response(doc, where, expect_ids, responses))
        responses += 1
    if responses == 0:
        problems.append("no responses found (empty session transcript)")
    if expect_ids is not None and responses != len(expect_ids):
        problems.append(
            f"expected {len(expect_ids)} response(s) for --expect-ids, found {responses}"
        )
    return problems, responses


PERFDIFF_VERDICTS = ("unchanged", "improved", "regressed", "added", "removed")


def check_perfdiff(doc: object) -> list[str]:
    """Validate `difftrace perf diff --json` output (obs::PerfDiffReport)."""
    problems = Problems()
    if not isinstance(doc, dict):
        return ["document root is not an object"]

    version = problems.expect(doc, "perfdiff_version", int, "perfdiff")
    if version is not None and version != 1:
        problems.add(f"perfdiff: unsupported perfdiff_version {version}")
    problems.expect(doc, "base", str, "perfdiff")
    problems.expect(doc, "head", str, "perfdiff")
    problems.expect(doc, "rel_threshold", (int, float), "perfdiff")
    problems.expect(doc, "abs_floor_ns", int, "perfdiff")
    problems.expect(doc, "base_wall_ns", int, "perfdiff")
    problems.expect(doc, "head_wall_ns", int, "perfdiff")
    verdict = problems.expect(doc, "verdict", str, "perfdiff")
    if verdict is not None and verdict not in ("ok", "regressed"):
        problems.add(f"perfdiff: verdict '{verdict}' is not ok/regressed")
    exit_code = problems.expect(doc, "exit_code", int, "perfdiff")
    if exit_code is not None and exit_code not in (0, 3):
        problems.add(f"perfdiff: exit_code {exit_code} is not 0/3")
    if verdict is not None and exit_code is not None:
        if (verdict == "regressed") != (exit_code == 3):
            problems.add(f"perfdiff: verdict '{verdict}' disagrees with exit_code {exit_code}")

    summary = problems.expect(doc, "summary", dict, "perfdiff")
    for key in PERFDIFF_VERDICTS:
        if summary is not None:
            problems.expect(summary, key, int, "summary")

    phases = problems.expect(doc, "phases", list, "perfdiff")
    tally = dict.fromkeys(PERFDIFF_VERDICTS, 0)
    for i, phase in enumerate(phases or []):
        where = f"phases[{i}]"
        if not isinstance(phase, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(phase, "path", str, where)
        problems.expect(phase, "base_wall_ns", int, where)
        problems.expect(phase, "head_wall_ns", int, where)
        problems.expect(phase, "base_count", int, where)
        problems.expect(phase, "head_count", int, where)
        problems.expect(phase, "ratio", (int, float), where)
        phase_verdict = problems.expect(phase, "verdict", str, where)
        if phase_verdict is not None:
            if phase_verdict not in PERFDIFF_VERDICTS:
                problems.add(f"{where}: unknown verdict '{phase_verdict}'")
            else:
                tally[phase_verdict] += 1
    if isinstance(summary, dict):
        for key in PERFDIFF_VERDICTS:
            if isinstance(summary.get(key), int) and summary[key] != tally[key]:
                problems.add(
                    f"perfdiff: summary.{key} = {summary[key]} but phases tally {tally[key]}"
                )

    counters = problems.expect(doc, "counters", list, "perfdiff")
    for i, entry in enumerate(counters or []):
        where = f"counters[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(entry, "name", str, where)
        problems.expect(entry, "base", int, where)
        problems.expect(entry, "head", int, where)

    selftrace = problems.expect(doc, "selftrace", dict, "perfdiff")
    if selftrace is not None:
        problems.expect(selftrace, "ran", bool, "selftrace")
        problems.expect(selftrace, "identical", bool, "selftrace")
        problems.expect(selftrace, "distance", int, "selftrace")
        problems.expect(selftrace, "note", str, "selftrace")

    return problems.messages


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("manifest", help="manifest JSON written by --stats=FILE")
    parser.add_argument(
        "--perfdiff",
        action="store_true",
        help="validate `difftrace perf diff --json` output instead of a run manifest",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="validate a line-delimited serve session transcript (one JSON "
        "response per line, as collected via `difftrace query --raw`)",
    )
    parser.add_argument(
        "--expect-ids",
        default=None,
        metavar="ID,ID,...",
        help="with --serve: comma-separated request_ids the responses must echo, in order",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.0,
        help="minimum phase coverage (fraction of root wall time, e.g. 0.95)",
    )
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter that must be present (repeatable)",
    )
    args = parser.parse_args()

    if args.serve:
        expect_ids = args.expect_ids.split(",") if args.expect_ids else None
        serve_problems, responses = check_serve(args.manifest, expect_ids)
        if serve_problems:
            for message in serve_problems:
                print(f"check_manifest: {message}", file=sys.stderr)
            print(
                f"check_manifest: {args.manifest}: {len(serve_problems)} problem(s)",
                file=sys.stderr,
            )
            return 1
        print(f"check_manifest: {args.manifest}: serve ok ({responses} response(s))")
        return 0

    try:
        with open(args.manifest, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_manifest: cannot read {args.manifest}: {e}", file=sys.stderr)
        return 1

    if args.perfdiff:
        problems = check_perfdiff(doc)
    else:
        problems = check_manifest(doc, args.min_coverage, args.require_counter)
    if problems:
        for message in problems:
            print(f"check_manifest: {message}", file=sys.stderr)
        print(f"check_manifest: {args.manifest}: {len(problems)} problem(s)", file=sys.stderr)
        return 1

    if args.perfdiff:
        print(
            f"check_manifest: {args.manifest}: perfdiff ok "
            f"({len(doc.get('phases', []))} phase(s), verdict {doc.get('verdict')})"
        )
        return 0

    phases = doc.get("phases", [])
    print(
        f"check_manifest: {args.manifest}: ok "
        f"({len(phases)} phase(s), {len(doc.get('counters', []))} counter(s), "
        f"coverage {phase_coverage(phases):.3f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
