#!/usr/bin/env python3
"""Validate a difftrace run manifest against schema version 1.

The manifest is the machine-readable record a run writes under
`--stats=FILE` (and the format of the BENCH_*.json files produced by
`perf_sweep --json`). The schema is documented in DESIGN.md
("Observability") and mirrored by obs::RunManifest. CI runs this over the
manifest of the oddeven walkthrough so the telemetry contract — stable
field names and types, phases that actually account for the run — is
enforced, not just described.

Usage: tools/check_manifest.py MANIFEST.json
           [--min-coverage 0.95] [--require-counter NAME ...]
Exit code: 0 when the manifest validates, 1 otherwise (problems on stderr).

Stdlib only — no third-party JSON-schema machinery.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

CRC32_RE = re.compile(r"^[0-9a-f]{8}$")
PHASE_PATH_RE = re.compile(r"^[^/]+(/[^/]+)*$")


class Problems:
    def __init__(self) -> None:
        self.messages: list[str] = []

    def add(self, message: str) -> None:
        self.messages.append(message)

    def expect(self, obj: dict, key: str, kinds, where: str) -> object:
        """Checks obj[key] exists with one of `kinds`; returns it (or None)."""
        if key not in obj:
            self.add(f"{where}: missing key '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, kinds) or isinstance(value, bool) and kinds is not bool:
            self.add(f"{where}: '{key}' has type {type(value).__name__}")
            return None
        return value


def check_phases(phases: list, problems: Problems) -> None:
    for i, phase in enumerate(phases):
        where = f"phases[{i}]"
        if not isinstance(phase, dict):
            problems.add(f"{where}: not an object")
            continue
        path = problems.expect(phase, "path", str, where)
        name = problems.expect(phase, "name", str, where)
        depth = problems.expect(phase, "depth", int, where)
        count = problems.expect(phase, "count", int, where)
        problems.expect(phase, "wall_ns", int, where)
        problems.expect(phase, "cpu_ns", int, where)
        if path is not None and not PHASE_PATH_RE.match(path):
            problems.add(f"{where}: malformed path '{path}'")
        if path is not None and name is not None and not path.endswith(name):
            problems.add(f"{where}: name '{name}' is not the tail of path '{path}'")
        if path is not None and depth is not None and path.count("/") != depth:
            problems.add(f"{where}: depth {depth} disagrees with path '{path}'")
        if count is not None and count < 1:
            problems.add(f"{where}: count {count} < 1")


def phase_coverage(phases: list) -> float:
    """Mirror of obs::RunManifest::phase_coverage: the fraction of the
    largest depth-0 phase's wall time covered by its direct children."""
    roots = [p for p in phases if isinstance(p, dict) and p.get("depth") == 0]
    if not roots:
        return 1.0
    root = max(roots, key=lambda p: p.get("wall_ns", 0))
    if not root.get("wall_ns"):
        return 1.0
    prefix = root["path"] + "/"
    children_wall = sum(
        p.get("wall_ns", 0)
        for p in phases
        if isinstance(p, dict) and p.get("depth") == 1 and str(p.get("path", "")).startswith(prefix)
    )
    if not any(
        isinstance(p, dict) and p.get("depth") == 1 and str(p.get("path", "")).startswith(prefix)
        for p in phases
    ):
        return 1.0
    return children_wall / root["wall_ns"]


def check_manifest(doc: object, min_coverage: float, required_counters: list[str]) -> list[str]:
    problems = Problems()
    if not isinstance(doc, dict):
        return ["document root is not an object"]

    version = problems.expect(doc, "manifest_version", int, "manifest")
    if version is not None and version != 1:
        problems.add(f"manifest: unsupported manifest_version {version}")
    problems.expect(doc, "tool_version", str, "manifest")
    problems.expect(doc, "exit_code", int, "manifest")
    problems.expect(doc, "wall_ns", int, "manifest")
    problems.expect(doc, "cpu_ns", int, "manifest")
    problems.expect(doc, "peak_rss_kb", int, "manifest")

    # Execution-engine fields are additive (schema stays v1): absent in
    # manifests written before the scheduler existed, typed when present.
    for key, kinds in (
        ("jobs", int),
        ("cache_dir", str),
        ("cache_hits", int),
        ("cache_misses", int),
        ("check_engine", str),
        ("summary_cache_hits", int),
        ("summary_cache_misses", int),
    ):
        if key in doc:
            problems.expect(doc, key, kinds, "manifest")
    engine = doc.get("check_engine")
    if isinstance(engine, str) and engine not in ("", "replay", "summary", "auto"):
        problems.add(f"manifest: check_engine '{engine}' is not one of replay/summary/auto")

    command = problems.expect(doc, "command", list, "manifest")
    if command is not None and not all(isinstance(c, str) for c in command):
        problems.add("manifest: command entries must be strings")

    inputs = problems.expect(doc, "inputs", list, "manifest")
    for i, entry in enumerate(inputs or []):
        where = f"inputs[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(entry, "path", str, where)
        problems.expect(entry, "bytes", int, where)
        problems.expect(entry, "ok", bool, where)
        crc = problems.expect(entry, "crc32", str, where)
        if crc is not None and not CRC32_RE.match(crc):
            problems.add(f"{where}: crc32 '{crc}' is not 8 lowercase hex digits")

    phases = problems.expect(doc, "phases", list, "manifest")
    if phases is not None:
        check_phases(phases, problems)
        coverage = phase_coverage(phases)
        if coverage < min_coverage:
            problems.add(
                f"manifest: phase coverage {coverage:.3f} below required {min_coverage:.3f}"
            )

    counters = problems.expect(doc, "counters", list, "manifest")
    counter_names = set()
    for i, entry in enumerate(counters or []):
        where = f"counters[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        name = problems.expect(entry, "name", str, where)
        value = problems.expect(entry, "value", int, where)
        if name is not None:
            counter_names.add(name)
        if value is not None and value == 0:
            problems.add(f"{where}: zero-valued counter '{name}' (schema emits nonzero only)")
    for name in required_counters:
        if name not in counter_names:
            problems.add(f"manifest: required counter '{name}' missing or zero")

    histograms = problems.expect(doc, "histograms", list, "manifest")
    for i, entry in enumerate(histograms or []):
        where = f"histograms[{i}]"
        if not isinstance(entry, dict):
            problems.add(f"{where}: not an object")
            continue
        problems.expect(entry, "name", str, where)
        problems.expect(entry, "count", int, where)
        problems.expect(entry, "sum", int, where)
        buckets = problems.expect(entry, "buckets", list, where)
        for j, bucket in enumerate(buckets or []):
            bwhere = f"{where}.buckets[{j}]"
            if not isinstance(bucket, dict):
                problems.add(f"{bwhere}: not an object")
                continue
            problems.expect(bucket, "le_log2", int, bwhere)
            problems.expect(bucket, "count", int, bwhere)

    return problems.messages


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("manifest", help="manifest JSON written by --stats=FILE")
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.0,
        help="minimum phase coverage (fraction of root wall time, e.g. 0.95)",
    )
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="counter that must be present (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.manifest, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_manifest: cannot read {args.manifest}: {e}", file=sys.stderr)
        return 1

    problems = check_manifest(doc, args.min_coverage, args.require_counter)
    if problems:
        for message in problems:
            print(f"check_manifest: {message}", file=sys.stderr)
        print(f"check_manifest: {args.manifest}: {len(problems)} problem(s)", file=sys.stderr)
        return 1

    phases = doc.get("phases", [])
    print(
        f"check_manifest: {args.manifest}: ok "
        f"({len(phases)} phase(s), {len(doc.get('counters', []))} counter(s), "
        f"coverage {phase_coverage(phases):.3f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
