#!/usr/bin/env python3
"""difftrace_lint: file-scope invariant linter for the difftrace tree.

Enforces project invariants that neither the compiler nor clang-tidy checks,
with one stable rule id per invariant (see RULES below, or --list-rules).
Companion to the Clang -Wthread-safety build: thread-safety analysis proves
lock discipline inside annotated code; this linter proves the *perimeter*
invariants — that raw primitives, hidden nondeterminism, unbounded decodes,
and stray side channels do not creep back in.

Scanning model
--------------
Pure textual scan of C++ sources, one file at a time (no compile, no AST):
comments and string/char literals are stripped first (tracking block
comments and raw strings across lines), so prose and log text never trip a
rule. This is deliberately dumb and therefore fast, dependency-free, and
runnable on any checkout; the syntactic rules are chosen so that the token
patterns are the invariant.

Suppressions
------------
A finding on line N is suppressed by `// NOLINT-DT(rule)` in a comment on
line N (same-line, like clang-tidy's NOLINT). Multiple rules:
`NOLINT-DT(rule-a, rule-b)`; `NOLINT-DT(*)` suppresses every rule on the
line. Suppressions should carry a reason after a colon:
`// NOLINT-DT(bounded-decode): strict-by-contract API`.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
from typing import Callable, Iterable, Optional

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    # Returns True when `path` is exempt from this rule entirely.
    exempt: Callable[[pathlib.PurePath], bool]
    # Scans stripped lines, yielding (line_number, message).
    scan: Callable[[list[str]], Iterable[tuple[int, str]]]


def _parts(path: pathlib.PurePath) -> set[str]:
    return set(path.parts)


def _has_dir(path: pathlib.PurePath, *names: str) -> bool:
    parts = _parts(path)
    return any(name in parts for name in names)


# --- stream-discipline ----------------------------------------------------
# Only the CLI and the demo apps own process stdout; everything else returns
# data or writes through the obs/ sinks. printf-family output from a library
# corrupts machine-readable CLI output (difftrace --json) and breaks the
# deterministic-output contract.

_STREAM_RE = re.compile(
    r"std\s*::\s*cout"
    r"|(?<![\w:.>])printf\s*\("  # bare printf( — not snprintf/fprintf/obj.printf
    r"|(?<![\w:.>])puts\s*\("
    r"|(?<![\w:.>])putchar\s*\("
    r"|fprintf\s*\(\s*stdout\b"
)


def _scan_stream(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _STREAM_RE.search(line):
            yield i, "writes to process stdout outside cli/ and apps/ (return data or use obs/ sinks)"


# --- bounded-decode -------------------------------------------------------
# Codec decoders expose two entry points: strict decode(bytes) — unbounded,
# throws on damage — and decode_prefix(bytes, cap) — bounded, best-effort.
# Outside the codec layer itself only the bounded/tolerant wrappers
# (TraceStore::decode / decode_tolerant) may drive a decoder: raw strict
# decodes on unvalidated bytes are how a truncated archive becomes a crash.

_DECODE_RE = re.compile(r"\bdecoder\s*(?:->|\.)\s*decode\s*\(")


def _scan_decode(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _DECODE_RE.search(line):
            yield i, "unbounded decoder->decode() outside the codec layer (use decode_prefix or the TraceStore wrappers)"


# --- determinism ----------------------------------------------------------
# The pipeline's contract is byte-identical output at any job count; wall
# clock and ambient randomness are the two classic ways to silently break
# it. Chaos (fault injection) and bench code are exempt by construction.

_DETERMINISM_RE = re.compile(
    r"(?<![\w:])time\s*\("  # ::time(nullptr) — not steady_clock::now, not wall_time(
    r"|(?<![\w:])s?rand\s*\("
    r"|std\s*::\s*random_device"
)


def _scan_determinism(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _DETERMINISM_RE.search(line):
            yield i, "ambient nondeterminism (time()/rand()/random_device) outside chaos/bench"


# --- naked-new ------------------------------------------------------------
# Ownership is expressed with containers and make_unique/make_shared; a
# naked new/delete pair is a leak waiting for the first exception between
# them. (Placement new would also match — none exists in this tree; if one
# appears it deserves the NOLINT-DT it will need.)

_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")  # `new T`, not `operator new(`
_DELETE_RE = re.compile(r"(?<![\w:])delete\b(?!\s*\()")


def _scan_naked_new(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        # `= delete;` / `= delete ;` declarations are the C++ idiom, not a
        # deallocation; skip matches immediately preceded by `=`.
        if _NEW_RE.search(line):
            yield i, "naked new (use make_unique/make_shared or a container)"
            continue
        for m in _DELETE_RE.finditer(line):
            before = line[: m.start()].rstrip()
            if before.endswith("="):
                continue  # deleted special member function
            yield i, "naked delete (ownership belongs in a smart pointer)"
            break


# --- task-throw -----------------------------------------------------------
# Pool worker threads run ticks with no exception handler: a throw escaping
# a posted lambda is std::terminate. Every fallible tick must catch and
# stash its exception (the Graph / parallel_for pattern). The scanner finds
# `post(` call arguments, locates lambda bodies inside the argument list,
# and flags `throw` tokens not enclosed in a `try { ... }` *within the
# lambda*. Throws inside a try are fine — they are caught before escaping.

_POST_RE = re.compile(r"(?<![\w:])(?:\w+\s*(?:\.|->)\s*)?post\s*\(")
_LAMBDA_INTRO_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:\w+\s*)*\{")
_THROW_RE = re.compile(r"(?<![\w:])throw\b")
_TRY_RE = re.compile(r"(?<![\w:])try\b")


def _scan_task_throw(lines: list[str]) -> Iterable[tuple[int, str]]:
    text = "\n".join(lines)
    for post in _POST_RE.finditer(text):
        # Slice the post(...) argument list by balancing parens.
        open_paren = text.index("(", post.start() + post.group(0).index("post"))
        depth = 0
        end = None
        for j in range(open_paren, len(text)):
            ch = text[j]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    end = j
                    break
        if end is None:
            continue  # unbalanced (macro soup); not this linter's fight
        args = text[open_paren + 1 : end]
        args_offset = open_paren + 1
        for lam in _LAMBDA_INTRO_RE.finditer(args):
            body_start = args_offset + lam.end()  # position just past `{`
            # Balance braces to find the lambda body, tracking try-block
            # nesting depth as we go.
            brace = 1
            try_depth = 0  # how many enclosing try-blocks are open
            try_stack: list[int] = []  # brace depths at which a try opened
            k = body_start
            pending_try = False
            while k < len(text) and brace > 0:
                ch = text[k]
                if ch == "{":
                    if pending_try:
                        try_stack.append(brace)
                        try_depth += 1
                        pending_try = False
                    brace += 1
                elif ch == "}":
                    brace -= 1
                    if try_stack and brace == try_stack[-1]:
                        try_stack.pop()
                        try_depth -= 1
                else:
                    m_try = _TRY_RE.match(text, k)
                    if m_try:
                        pending_try = True
                        k = m_try.end()
                        continue
                    m_throw = _THROW_RE.match(text, k)
                    if m_throw:
                        if try_depth == 0:
                            line_no = text.count("\n", 0, k) + 1
                            yield line_no, "throw may escape a Pool task lambda (workers have no handler; catch and stash the exception)"
                        k = m_throw.end()
                        continue
                k += 1
    return


# --- sim-only-injection ---------------------------------------------------
# The fault injector's hook surface (simfault::hooks::*) may be compiled
# only into the simulated runtimes it perturbs — simmpi, simomp, the
# miniapps, and simfault itself. A hook call in the analysis pipeline or
# the CLI would mean injected faults could perturb *analysis* of a trace,
# not just its collection, breaking the determinism contract. (Arming via
# simfault::InjectorSession / parse_plan is control-plane and stays legal
# anywhere.)

_SIM_HOOK_RE = re.compile(r"\bsimfault\s*::\s*hooks\s*::")


def _scan_sim_inject(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _SIM_HOOK_RE.search(line):
            yield i, "simfault::hooks:: call outside the simulated runtimes (injection points live in simmpi/simomp/apps only)"


# --- ir-first-analysis ----------------------------------------------------
# The static checkers run on the NLR program directly (loop-body effect
# summaries composed by iteration count); expanding the IR back into the
# full op stream forfeits exactly the asymptotic win the abstract engine
# exists for. The one sanctioned expansion site is the scoped replay
# fallback (replay_fallback.cpp), which materialises a single loop body
# only when a summary's precision verdict demands an exact walk.

_IR_FIRST_RE = re.compile(r"(?<![\w])expand_nlr\s*\(")


def _scan_ir_first(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _IR_FIRST_RE.search(line):
            yield i, "expand_nlr() in analysis code outside the replay fallback (summarize the NLR body instead; scoped expansion lives in replay_fallback.cpp)"


# --- raw-mutex ------------------------------------------------------------
# All locking goes through util::Mutex / util::MutexLock / util::CondVar so
# Clang thread-safety analysis can see it; raw std primitives are invisible
# to the proof. Additionally, a util::Mutex member in a file with no
# DT_GUARDED_BY annotation guards nothing the analysis can check — the
# capability exists but no data is tied to it.

_RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
)
_MUTEX_MEMBER_RE = re.compile(r"\butil\s*::\s*Mutex\s+\w+\s*;")


def _scan_raw_mutex(lines: list[str]) -> Iterable[tuple[int, str]]:
    has_annotation = any("DT_GUARDED_BY" in line or "DT_ACQUIRE" in line for line in lines)
    first_member: Optional[int] = None
    for i, line in enumerate(lines, start=1):
        if _RAW_MUTEX_RE.search(line):
            yield i, "raw std synchronization primitive (use util::Mutex/MutexLock/CondVar so thread-safety analysis sees it)"
        if first_member is None and _MUTEX_MEMBER_RE.search(line):
            first_member = i
    if first_member is not None and not has_annotation:
        yield first_member, "util::Mutex member but no DT_GUARDED_BY in this file (tie the guarded data to the capability)"


# --- obs-sink-discipline --------------------------------------------------
# The obs layer is the telemetry *producer*: exporters, the perf differ,
# and the manifest renderer all emit through an explicit std::ostream& sink
# the caller chooses (stdout, --out FILE, a test's stringstream). An
# ambient stream write inside src/obs/ — std::cerr included — bypasses the
# caller's sink choice, breaks the byte-identical-export contract, and
# cannot be captured by the CLI's stream-discipline epilogue. Chatter
# belongs to the caller (the CLI routes it via util::status_line).
# stream-discipline already polices stdout here; this rule closes the
# stderr/FILE* side for the one layer whose whole job is well-routed output.

_OBS_SINK_RE = re.compile(
    r"std\s*::\s*cerr"
    r"|std\s*::\s*clog"
    r"|(?<![\w:.>])fprintf\s*\("
    r"|(?<![\w:.>])fputs\s*\("
    r"|(?<![\w:.>])fputc\s*\("
    r"|(?<![\w:.>])perror\s*\("
)


def _scan_obs_sink(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _OBS_SINK_RE.search(line):
            yield i, "ambient stream write in the obs layer (emit through the explicit std::ostream& sink; chatter belongs to the caller)"


# --- serve-protocol-discipline --------------------------------------------
# The serve daemon's contract is "one JSON document per line on the socket,
# chatter only on streams the host passes in". ANY ambient process-stream
# write inside src/serve/ — stdout or stderr, iostream or stdio — either
# corrupts protocol framing (a stray line between responses) or escapes the
# response's `chatter` capture, so a client loses daemon output it was
# promised. Results travel in Response::output, chatter in
# Response::chatter, daemon-side logging through the std::ostream& the
# hosting command wires (the CLI points it at its own err stream).
# stream-discipline already bans the stdout half everywhere; this rule adds
# the stderr/FILE* half for the one directory that speaks a framed protocol.

_SERVE_PROTOCOL_RE = re.compile(
    r"std\s*::\s*cout"
    r"|std\s*::\s*cerr"
    r"|std\s*::\s*clog"
    r"|(?<![\w:.>])printf\s*\("
    r"|(?<![\w:.>])fprintf\s*\("
    r"|(?<![\w:.>])fputs\s*\("
    r"|(?<![\w:.>])fputc\s*\("
    r"|(?<![\w:.>])puts\s*\("
    r"|(?<![\w:.>])putchar\s*\("
    r"|(?<![\w:.>])perror\s*\("
)


def _scan_serve_protocol(lines: list[str]) -> Iterable[tuple[int, str]]:
    for i, line in enumerate(lines, start=1):
        if _SERVE_PROTOCOL_RE.search(line):
            yield i, "ambient process-stream write in the serve layer (route results into Response::output/chatter and logging through the injected std::ostream& sink)"


# --------------------------------------------------------------------------

RULES: list[Rule] = [
    Rule(
        "stream-discipline",
        "no std::cout/printf outside cli/ and apps/",
        exempt=lambda p: _has_dir(p, "cli", "apps", "tools", "examples"),
        scan=_scan_stream,
    ),
    Rule(
        "bounded-decode",
        "no unbounded decoder->decode() outside the codec layer (src/compress)",
        exempt=lambda p: _has_dir(p, "compress"),
        scan=_scan_decode,
    ),
    Rule(
        "determinism",
        "no time()/rand()/std::random_device outside chaos/bench",
        exempt=lambda p: _has_dir(p, "chaos", "bench"),
        scan=_scan_determinism,
    ),
    Rule(
        "naked-new",
        "no naked new/delete (smart pointers and containers own memory)",
        exempt=lambda p: False,
        scan=_scan_naked_new,
    ),
    Rule(
        "task-throw",
        "no throw escaping a Pool task lambda (workers have no handler)",
        exempt=lambda p: False,
        scan=_scan_task_throw,
    ),
    Rule(
        "sim-only-injection",
        "no simfault::hooks:: call sites outside simfault/simmpi/simomp/apps",
        exempt=lambda p: _has_dir(p, "simfault", "simmpi", "simomp", "apps"),
        scan=_scan_sim_inject,
    ),
    Rule(
        "ir-first-analysis",
        "no expand_nlr() in src/analyze/ outside the replay-fallback TU",
        exempt=lambda p: not _has_dir(p, "analyze") or p.name == "replay_fallback.cpp",
        scan=_scan_ir_first,
    ),
    Rule(
        "obs-sink-discipline",
        "no ambient stream writes (std::cerr/fprintf/...) inside src/obs/",
        exempt=lambda p: not _has_dir(p, "obs"),
        scan=_scan_obs_sink,
    ),
    Rule(
        "serve-protocol-discipline",
        "no ambient process-stream writes (stdout or stderr) inside src/serve/",
        exempt=lambda p: not _has_dir(p, "serve"),
        scan=_scan_serve_protocol,
    ),
    Rule(
        "raw-mutex",
        "no raw std mutex primitives; util::Mutex members must guard annotated data",
        exempt=lambda p: p.name in ("mutex.hpp", "thread_annotations.hpp") and _has_dir(p, "util"),
        scan=_scan_raw_mutex,
    ),
]

RULE_IDS = {rule.rule_id for rule in RULES}

# NOLINT-DT shares one suppression namespace with the dtsa static analyzer
# (src/dtsa/): its rule ids are legal in suppressions this linter scans past
# (dtsa enforces them; this linter merely must not flag them as unknown).
DTSA_RULE_IDS = {
    "blocking-under-lock",
    "alloc-in-hot-path",
    "unbounded-decode-reach",
    "lock-order-consistency",
    "stream-reach",
}
KNOWN_SUPPRESSIBLE = RULE_IDS | DTSA_RULE_IDS

# --------------------------------------------------------------------------
# Source preprocessing: strip comments and literals, collect suppressions
# --------------------------------------------------------------------------

_NOLINT_RE = re.compile(r"NOLINT-DT\(\s*([^)]*?)\s*\)")
_RAW_STRING_OPEN_RE = re.compile(r'R"([^ ()\\\t\v\f\n]{0,16})\(')


@dataclasses.dataclass
class Preprocessed:
    lines: list[str]  # stripped of comments/strings, 0-based
    suppressions: dict[int, set[str]]  # 1-based line -> rule ids ('*' = all)
    unknown_suppressions: list[tuple[int, str]]  # NOLINT-DT of a rule that does not exist


def preprocess(text: str) -> Preprocessed:
    """Strips comments, string and char literals; records NOLINT-DT markers.

    Stripped spans are replaced with spaces so column/offsets and line
    structure survive. Handles // and /* */ comments, "..."/'...' with
    escapes, and R"delim(...)delim" raw strings, all across line breaks.
    """
    out: list[str] = []
    suppressions: dict[int, set[str]] = {}
    unknown: list[tuple[int, str]] = []

    def note_suppressions(comment: str, line_no: int) -> None:
        for m in _NOLINT_RE.finditer(comment):
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            for r in rules:
                if r != "*" and r not in KNOWN_SUPPRESSIBLE:
                    unknown.append((line_no, r))
            suppressions.setdefault(line_no, set()).update(rules)

    i = 0
    line_no = 1
    n = len(text)
    buf: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "\n":
            out.append("".join(buf))
            buf = []
            line_no += 1
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            note_suppressions(text[i:end], line_no)
            i = end
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                end = n
            else:
                end += 2
            comment = text[i:end]
            # A NOLINT in a block comment applies to the line it sits on.
            local_line = line_no
            for part in comment.split("\n"):
                note_suppressions(part, local_line)
                local_line += 1
            for c in comment:
                if c == "\n":
                    out.append("".join(buf))
                    buf = []
                    line_no += 1
            i = end
            continue
        raw = _RAW_STRING_OPEN_RE.match(text, i) if ch == "R" else None
        if raw:
            # `R` must start the literal token. An identifier character right
            # before it (beyond a bare encoding prefix u/U/L/u8) makes this
            # the tail of a longer identifier — `MACRO_R"text("` is an
            # ordinary string after an identifier, and treating it as a raw
            # string would swallow everything up to a `)text"` that never
            # comes.
            j = i
            while j > 0 and (text[j - 1].isalnum() or text[j - 1] == "_"):
                j -= 1
            if text[j:i] not in ("", "u", "U", "L", "u8"):
                raw = None
        if raw:
            closer = ")" + raw.group(1) + '"'
            end = text.find(closer, raw.end())
            end = n if end == -1 else end + len(closer)
            for c in text[i:end]:
                if c == "\n":
                    out.append("".join(buf))
                    buf = []
                    line_no += 1
            buf.append('""')
            i = end
            continue
        if ch == "'" and 0 < i and i + 1 < n and text[i - 1].isalnum() and text[i + 1].isalnum():
            # Digit separator (1'000'000), not a char literal: opening one
            # here would swallow the rest of the line past the "closing"
            # separator. (`return'x'` without a space hits this too — write
            # the space.)
            buf.append(ch)
            i += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            # Unterminated-on-line literals (e.g. apostrophes would have been
            # in comments, already stripped) just end at the newline.
            end = min(j + 1, n) if j < n and text[j] == quote else j
            end = max(end, i + 1)
            # A backslash-newline inside the literal was consumed above:
            # emit the line breaks it spanned or every later line drifts.
            for c in text[i:end]:
                if c == "\n":
                    out.append("".join(buf))
                    buf = []
                    line_no += 1
            buf.append(quote + quote)
            i = end
            continue
        buf.append(ch)
        i += 1
    if buf:
        out.append("".join(buf))
    return Preprocessed(out, suppressions, unknown)


# --------------------------------------------------------------------------
# SARIF export (shared semantics with dtsa's --sarif; validated by
# tools/check_sarif.py)
# --------------------------------------------------------------------------

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
    "sarif-schema-2.1.0.json"
)


def sarif_document(findings: list[Finding]) -> dict:
    summaries = {rule.rule_id: rule.summary for rule in RULES}
    # Pseudo-rules (unknown-suppression, io-error) appear only when emitted.
    for f in findings:
        summaries.setdefault(f.rule, f.rule)
    return {
        "version": "2.1.0",
        "$schema": _SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "difftrace_lint",
                        "informationUri": "https://github.com/difftrace/difftrace",
                        "rules": [
                            {"id": rule_id, "shortDescription": {"text": summary}}
                            for rule_id, summary in sorted(summaries.items())
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": f.path},
                                    "region": {"startLine": max(f.line, 1)},
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".inl"}


def iter_sources(paths: list[pathlib.Path]) -> Iterable[pathlib.Path]:
    for path in paths:
        if path.is_file():
            if path.suffix in CXX_SUFFIXES:
                yield path
        elif path.is_dir():
            yield from sorted(p for p in path.rglob("*") if p.is_file() and p.suffix in CXX_SUFFIXES)


def lint_file(path: pathlib.Path, display: str) -> tuple[list[Finding], list[Finding]]:
    """Returns (findings, suppression_problems) for one file."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(display, 0, "io-error", str(e))], []
    pre = preprocess(text)
    rel = pathlib.PurePath(display)
    findings: list[Finding] = []
    for rule in RULES:
        if rule.exempt(rel):
            continue
        for line_no, message in rule.scan(pre.lines):
            suppressed = pre.suppressions.get(line_no, set())
            if "*" in suppressed or rule.rule_id in suppressed:
                continue
            findings.append(Finding(display, line_no, rule.rule_id, message))
    problems = [
        Finding(display, line_no, "unknown-suppression", f"NOLINT-DT names unknown rule '{rule_id}'")
        for line_no, rule_id in pre.unknown_suppressions
    ]
    return findings, problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="difftrace_lint",
        description="difftrace invariant linter (see module docstring; --list-rules for rule ids)",
    )
    parser.add_argument("paths", nargs="*", default=None, help="files or directories (default: src tools)")
    parser.add_argument("--root", default=".", help="repo root; paths are resolved and reported relative to it")
    parser.add_argument("--ci", action="store_true", help="emit GitHub Actions ::error annotations as well")
    parser.add_argument("--json", action="store_true", help="emit findings as a JSON array on stdout")
    parser.add_argument("--sarif", metavar="FILE", help="also write findings as SARIF 2.1 to FILE")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and summaries, then exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:20} {rule.summary}")
        return 0

    root = pathlib.Path(args.root).resolve()
    raw_paths = args.paths or ["src", "tools"]
    targets: list[pathlib.Path] = []
    for raw in raw_paths:
        p = pathlib.Path(raw)
        if not p.is_absolute():
            p = root / p
        if not p.exists():
            print(f"difftrace_lint: no such path: {raw}", file=sys.stderr)
            return 2
        targets.append(p)

    all_findings: list[Finding] = []
    files = 0
    for source in iter_sources(targets):
        files += 1
        try:
            display = str(source.resolve().relative_to(root))
        except ValueError:
            display = str(source)
        findings, problems = lint_file(source, display)
        all_findings.extend(findings)
        all_findings.extend(problems)

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.sarif:
        pathlib.Path(args.sarif).write_text(
            json.dumps(sarif_document(all_findings), indent=2) + "\n", encoding="utf-8"
        )

    if args.json:
        print(json.dumps([dataclasses.asdict(f) for f in all_findings], indent=2))
    else:
        for f in all_findings:
            print(f.render())
    if args.ci:
        for f in all_findings:
            print(f"::error file={f.path},line={f.line}::[{f.rule}] {f.message}")
    if not args.json:
        status = "clean" if not all_findings else f"{len(all_findings)} finding(s)"
        print(f"difftrace_lint: {files} file(s) scanned, {status}", file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
