#!/usr/bin/env python3
"""Selftest for difftrace_lint: pins every rule id against its seeded
fixture under tests/lint_fixtures/.

For each bad_<name>.cpp fixture the linter must exit nonzero and report
EXACTLY the expected (rule, line) set — no extras, no misses, stable line
numbers. clean.cpp (a file of deliberate near-misses) and suppressed.cpp
(every violation NOLINT-DT'ed) must exit 0 with zero findings. Run from
anywhere: paths resolve relative to the repo root (two levels up).

Usage: lint_selftest.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_ROOT = HERE.parent.parent
FIXTURES = pathlib.Path("tests") / "lint_fixtures"

# fixture -> exact expected set of (rule, line). Line numbers are part of
# the contract: a drifting line means the fixture or scanner changed and
# the expectation must be re-verified, not silently re-matched.
EXPECTED: dict[str, set[tuple[str, int]]] = {
    "bad_stream.cpp": {("stream-discipline", 9), ("stream-discipline", 13)},
    "bad_decode.cpp": {("bounded-decode", 14)},
    "bad_determinism.cpp": {("determinism", 10), ("determinism", 14), ("determinism", 18)},
    "bad_naked_new.cpp": {("naked-new", 9), ("naked-new", 13)},
    "bad_task_throw.cpp": {("task-throw", 15)},
    "bad_sim_inject.cpp": {("sim-only-injection", 14), ("sim-only-injection", 15)},
    "bad_raw_mutex.cpp": {("raw-mutex", 18), ("raw-mutex", 19)},
    # Stripper near-misses: MACRO_R"..." (not a raw string), a digit
    # separator's lone tick, and a backslash-newline inside a string. Each
    # once hid or shifted these two findings; the exact lines pin the fix.
    "bad_strip.cpp": {("stream-discipline", 17), ("stream-discipline", 24)},
    # Path-scoped rules: these fixtures sit under an analyze/ (resp. obs/)
    # subdirectory so the scope predicate fires on them exactly as it does
    # on src/analyze/ (resp. src/obs/).
    "analyze/bad_ir_first.cpp": {("ir-first-analysis", 18), ("ir-first-analysis", 24)},
    "obs/bad_obs_stream.cpp": {("obs-sink-discipline", 11), ("obs-sink-discipline", 15)},
    "serve/bad_serve_protocol.cpp": {
        ("serve-protocol-discipline", 11),
        ("serve-protocol-discipline", 15),
    },
    "clean.cpp": set(),
    "suppressed.cpp": set(),
}


def run_lint(root: pathlib.Path, fixture: pathlib.Path) -> tuple[int, list[dict]]:
    proc = subprocess.run(
        [sys.executable, str(HERE / "difftrace_lint.py"), "--root", str(root), "--json", str(fixture)],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode not in (0, 1):
        raise RuntimeError(f"linter crashed on {fixture} (exit {proc.returncode}):\n{proc.stderr}")
    return proc.returncode, json.loads(proc.stdout)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=str(DEFAULT_ROOT), help="repo root containing tests/lint_fixtures")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    failures: list[str] = []
    seen_rules: set[str] = set()
    for name, expected in sorted(EXPECTED.items()):
        fixture = root / FIXTURES / name
        if not fixture.is_file():
            failures.append(f"{name}: fixture missing at {fixture}")
            continue
        code, findings = run_lint(root, fixture)
        got = {(f["rule"], f["line"]) for f in findings}
        seen_rules.update(rule for rule, _ in got)
        if got != expected:
            missed = expected - got
            extra = got - expected
            detail = []
            if missed:
                detail.append(f"missed {sorted(missed)}")
            if extra:
                detail.append(f"extra {sorted(extra)}")
            failures.append(f"{name}: {'; '.join(detail)}")
        want_exit = 1 if expected else 0
        if code != want_exit:
            failures.append(f"{name}: exit {code}, expected {want_exit}")

    # Every advertised rule id must be exercised by some fixture, so a new
    # rule cannot land without a seeded-violation fixture.
    list_proc = subprocess.run(
        [sys.executable, str(HERE / "difftrace_lint.py"), "--list-rules"],
        capture_output=True,
        text=True,
        check=True,
    )
    advertised = {line.split()[0] for line in list_proc.stdout.splitlines() if line.strip()}
    uncovered = advertised - seen_rules
    if uncovered:
        failures.append(f"rules with no seeded fixture violation: {sorted(uncovered)}")

    if failures:
        print("lint_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"lint_selftest: OK ({len(EXPECTED)} fixtures, {len(advertised)} rules covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
