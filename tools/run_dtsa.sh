#!/usr/bin/env bash
# Runs the dtsa static analyzer over the repo's own sources (src/), keeping
# the real tree clean of dtsa findings: every true positive is either fixed
# or carries an inline `// NOLINT-DT(rule): reason` next to the code it
# excuses. Findings are errors (dtsa exits 1).
#
# Usage: tools/run_dtsa.sh [BUILD_DIR] [-- EXTRA_DTSA_ARGS...]
#        (default BUILD_DIR: build; e.g. `-- --sarif dtsa.sarif`)
#
# Skips with exit 0 when the dtsa binary has not been built — test runs that
# only built a subset of targets need not carry it; the CI static-analysis
# job builds it and is the enforcing run.
set -euo pipefail

build_dir="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi
root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "$build_dir" = /* ]]; then
  dtsa="$build_dir/src/dtsa/dtsa"
else
  dtsa="$root/$build_dir/src/dtsa/dtsa"
fi
if [[ ! -x "$dtsa" ]]; then
  echo "run_dtsa: $dtsa not built; skipping (CI enforces this check)" >&2
  exit 0
fi

exec "$dtsa" --root "$root" "$@" src
