file(REMOVE_RECURSE
  "CMakeFiles/test_nlr.dir/test_nlr.cpp.o"
  "CMakeFiles/test_nlr.dir/test_nlr.cpp.o.d"
  "test_nlr"
  "test_nlr.pdb"
  "test_nlr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
