# Empty dependencies file for test_nlr.
# This may be replaced when dependencies are built.
