file(REMOVE_RECURSE
  "CMakeFiles/test_simomp.dir/test_simomp.cpp.o"
  "CMakeFiles/test_simomp.dir/test_simomp.cpp.o.d"
  "test_simomp"
  "test_simomp.pdb"
  "test_simomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
