# Empty compiler generated dependencies file for test_triage.
# This may be replaced when dependencies are built.
