file(REMOVE_RECURSE
  "CMakeFiles/test_jsm.dir/test_jsm.cpp.o"
  "CMakeFiles/test_jsm.dir/test_jsm.cpp.o.d"
  "test_jsm"
  "test_jsm.pdb"
  "test_jsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
