# Empty compiler generated dependencies file for test_jsm.
# This may be replaced when dependencies are built.
