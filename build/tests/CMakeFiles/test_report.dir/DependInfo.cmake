
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/test_report.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_report.dir/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/difftrace_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/difftrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/difftrace_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/difftrace_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simomp/CMakeFiles/difftrace_simomp.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/difftrace_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/difftrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/difftrace_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/difftrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
