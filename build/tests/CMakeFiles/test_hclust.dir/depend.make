# Empty dependencies file for test_hclust.
# This may be replaced when dependencies are built.
