file(REMOVE_RECURSE
  "CMakeFiles/test_hclust.dir/test_hclust.cpp.o"
  "CMakeFiles/test_hclust.dir/test_hclust.cpp.o.d"
  "test_hclust"
  "test_hclust.pdb"
  "test_hclust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hclust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
