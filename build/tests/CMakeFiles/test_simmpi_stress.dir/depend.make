# Empty dependencies file for test_simmpi_stress.
# This may be replaced when dependencies are built.
