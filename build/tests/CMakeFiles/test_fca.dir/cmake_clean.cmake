file(REMOVE_RECURSE
  "CMakeFiles/test_fca.dir/test_fca.cpp.o"
  "CMakeFiles/test_fca.dir/test_fca.cpp.o.d"
  "test_fca"
  "test_fca.pdb"
  "test_fca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
