# Empty compiler generated dependencies file for test_fca.
# This may be replaced when dependencies are built.
