file(REMOVE_RECURSE
  "CMakeFiles/test_hclust_extras.dir/test_hclust_extras.cpp.o"
  "CMakeFiles/test_hclust_extras.dir/test_hclust_extras.cpp.o.d"
  "test_hclust_extras"
  "test_hclust_extras.pdb"
  "test_hclust_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hclust_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
