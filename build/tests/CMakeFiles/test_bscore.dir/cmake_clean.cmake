file(REMOVE_RECURSE
  "CMakeFiles/test_bscore.dir/test_bscore.cpp.o"
  "CMakeFiles/test_bscore.dir/test_bscore.cpp.o.d"
  "test_bscore"
  "test_bscore.pdb"
  "test_bscore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
