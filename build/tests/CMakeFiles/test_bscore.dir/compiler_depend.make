# Empty compiler generated dependencies file for test_bscore.
# This may be replaced when dependencies are built.
