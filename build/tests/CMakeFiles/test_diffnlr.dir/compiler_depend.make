# Empty compiler generated dependencies file for test_diffnlr.
# This may be replaced when dependencies are built.
