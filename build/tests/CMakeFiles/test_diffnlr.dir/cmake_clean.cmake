file(REMOVE_RECURSE
  "CMakeFiles/test_diffnlr.dir/test_diffnlr.cpp.o"
  "CMakeFiles/test_diffnlr.dir/test_diffnlr.cpp.o.d"
  "test_diffnlr"
  "test_diffnlr.pdb"
  "test_diffnlr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffnlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
