# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_varint[1]_include.cmake")
include("/root/repo/build/tests/test_bitset[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_stress[1]_include.cmake")
include("/root/repo/build/tests/test_simomp[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_nlr[1]_include.cmake")
include("/root/repo/build/tests/test_fca[1]_include.cmake")
include("/root/repo/build/tests/test_attributes[1]_include.cmake")
include("/root/repo/build/tests/test_jsm[1]_include.cmake")
include("/root/repo/build/tests/test_hclust[1]_include.cmake")
include("/root/repo/build/tests/test_hclust_extras[1]_include.cmake")
include("/root/repo/build/tests/test_bscore[1]_include.cmake")
include("/root/repo/build/tests/test_diff[1]_include.cmake")
include("/root/repo/build/tests/test_diffnlr[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_triage[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
