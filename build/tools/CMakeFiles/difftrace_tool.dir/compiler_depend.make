# Empty compiler generated dependencies file for difftrace_tool.
# This may be replaced when dependencies are built.
