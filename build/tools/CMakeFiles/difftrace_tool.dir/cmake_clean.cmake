file(REMOVE_RECURSE
  "CMakeFiles/difftrace_tool.dir/main.cpp.o"
  "CMakeFiles/difftrace_tool.dir/main.cpp.o.d"
  "difftrace"
  "difftrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
