# Empty dependencies file for exp_table8_wrong_op.
# This may be replaced when dependencies are built.
