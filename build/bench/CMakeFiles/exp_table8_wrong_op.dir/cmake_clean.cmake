file(REMOVE_RECURSE
  "CMakeFiles/exp_table8_wrong_op.dir/exp_table8_wrong_op.cpp.o"
  "CMakeFiles/exp_table8_wrong_op.dir/exp_table8_wrong_op.cpp.o.d"
  "exp_table8_wrong_op"
  "exp_table8_wrong_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table8_wrong_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
