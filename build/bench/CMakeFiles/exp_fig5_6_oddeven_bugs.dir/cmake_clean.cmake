file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_6_oddeven_bugs.dir/exp_fig5_6_oddeven_bugs.cpp.o"
  "CMakeFiles/exp_fig5_6_oddeven_bugs.dir/exp_fig5_6_oddeven_bugs.cpp.o.d"
  "exp_fig5_6_oddeven_bugs"
  "exp_fig5_6_oddeven_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_6_oddeven_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
