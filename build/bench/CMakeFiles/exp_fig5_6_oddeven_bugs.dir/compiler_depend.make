# Empty compiler generated dependencies file for exp_fig5_6_oddeven_bugs.
# This may be replaced when dependencies are built.
