file(REMOVE_RECURSE
  "CMakeFiles/exp_compression_ratio.dir/exp_compression_ratio.cpp.o"
  "CMakeFiles/exp_compression_ratio.dir/exp_compression_ratio.cpp.o.d"
  "exp_compression_ratio"
  "exp_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
