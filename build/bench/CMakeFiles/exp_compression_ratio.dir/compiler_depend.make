# Empty compiler generated dependencies file for exp_compression_ratio.
# This may be replaced when dependencies are built.
