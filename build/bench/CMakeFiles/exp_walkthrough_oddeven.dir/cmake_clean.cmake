file(REMOVE_RECURSE
  "CMakeFiles/exp_walkthrough_oddeven.dir/exp_walkthrough_oddeven.cpp.o"
  "CMakeFiles/exp_walkthrough_oddeven.dir/exp_walkthrough_oddeven.cpp.o.d"
  "exp_walkthrough_oddeven"
  "exp_walkthrough_oddeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_walkthrough_oddeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
