# Empty compiler generated dependencies file for exp_walkthrough_oddeven.
# This may be replaced when dependencies are built.
