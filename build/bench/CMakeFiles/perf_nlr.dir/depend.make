# Empty dependencies file for perf_nlr.
# This may be replaced when dependencies are built.
