file(REMOVE_RECURSE
  "CMakeFiles/perf_nlr.dir/perf_nlr.cpp.o"
  "CMakeFiles/perf_nlr.dir/perf_nlr.cpp.o.d"
  "perf_nlr"
  "perf_nlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_nlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
