# Empty dependencies file for perf_cluster.
# This may be replaced when dependencies are built.
