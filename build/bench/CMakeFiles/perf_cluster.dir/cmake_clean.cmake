file(REMOVE_RECURSE
  "CMakeFiles/perf_cluster.dir/perf_cluster.cpp.o"
  "CMakeFiles/perf_cluster.dir/perf_cluster.cpp.o.d"
  "perf_cluster"
  "perf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
