file(REMOVE_RECURSE
  "CMakeFiles/exp_table6_omp_bug.dir/exp_table6_omp_bug.cpp.o"
  "CMakeFiles/exp_table6_omp_bug.dir/exp_table6_omp_bug.cpp.o.d"
  "exp_table6_omp_bug"
  "exp_table6_omp_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table6_omp_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
