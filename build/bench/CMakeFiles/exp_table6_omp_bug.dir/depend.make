# Empty dependencies file for exp_table6_omp_bug.
# This may be replaced when dependencies are built.
