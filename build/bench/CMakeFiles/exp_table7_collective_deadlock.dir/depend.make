# Empty dependencies file for exp_table7_collective_deadlock.
# This may be replaced when dependencies are built.
