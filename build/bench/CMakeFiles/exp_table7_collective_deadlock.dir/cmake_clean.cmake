file(REMOVE_RECURSE
  "CMakeFiles/exp_table7_collective_deadlock.dir/exp_table7_collective_deadlock.cpp.o"
  "CMakeFiles/exp_table7_collective_deadlock.dir/exp_table7_collective_deadlock.cpp.o.d"
  "exp_table7_collective_deadlock"
  "exp_table7_collective_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table7_collective_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
