# Empty compiler generated dependencies file for perf_compress.
# This may be replaced when dependencies are built.
