file(REMOVE_RECURSE
  "CMakeFiles/perf_compress.dir/perf_compress.cpp.o"
  "CMakeFiles/perf_compress.dir/perf_compress.cpp.o.d"
  "perf_compress"
  "perf_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
