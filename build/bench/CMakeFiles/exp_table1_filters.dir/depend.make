# Empty dependencies file for exp_table1_filters.
# This may be replaced when dependencies are built.
