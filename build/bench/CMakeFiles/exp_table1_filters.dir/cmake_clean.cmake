file(REMOVE_RECURSE
  "CMakeFiles/exp_table1_filters.dir/exp_table1_filters.cpp.o"
  "CMakeFiles/exp_table1_filters.dir/exp_table1_filters.cpp.o.d"
  "exp_table1_filters"
  "exp_table1_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table1_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
