file(REMOVE_RECURSE
  "CMakeFiles/perf_fca.dir/perf_fca.cpp.o"
  "CMakeFiles/perf_fca.dir/perf_fca.cpp.o.d"
  "perf_fca"
  "perf_fca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
