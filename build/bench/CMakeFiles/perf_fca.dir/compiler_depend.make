# Empty compiler generated dependencies file for perf_fca.
# This may be replaced when dependencies are built.
