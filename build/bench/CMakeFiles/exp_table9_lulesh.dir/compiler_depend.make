# Empty compiler generated dependencies file for exp_table9_lulesh.
# This may be replaced when dependencies are built.
