file(REMOVE_RECURSE
  "CMakeFiles/exp_table9_lulesh.dir/exp_table9_lulesh.cpp.o"
  "CMakeFiles/exp_table9_lulesh.dir/exp_table9_lulesh.cpp.o.d"
  "exp_table9_lulesh"
  "exp_table9_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table9_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
