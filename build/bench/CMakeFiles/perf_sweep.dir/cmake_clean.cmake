file(REMOVE_RECURSE
  "CMakeFiles/perf_sweep.dir/perf_sweep.cpp.o"
  "CMakeFiles/perf_sweep.dir/perf_sweep.cpp.o.d"
  "perf_sweep"
  "perf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
