# Empty dependencies file for perf_sweep.
# This may be replaced when dependencies are built.
