file(REMOVE_RECURSE
  "CMakeFiles/ilcs_debugging.dir/ilcs_debugging.cpp.o"
  "CMakeFiles/ilcs_debugging.dir/ilcs_debugging.cpp.o.d"
  "ilcs_debugging"
  "ilcs_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilcs_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
