# Empty dependencies file for ilcs_debugging.
# This may be replaced when dependencies are built.
