# Empty compiler generated dependencies file for lulesh_hang_triage.
# This may be replaced when dependencies are built.
