file(REMOVE_RECURSE
  "CMakeFiles/lulesh_hang_triage.dir/lulesh_hang_triage.cpp.o"
  "CMakeFiles/lulesh_hang_triage.dir/lulesh_hang_triage.cpp.o.d"
  "lulesh_hang_triage"
  "lulesh_hang_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lulesh_hang_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
