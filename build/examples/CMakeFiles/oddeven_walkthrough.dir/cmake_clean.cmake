file(REMOVE_RECURSE
  "CMakeFiles/oddeven_walkthrough.dir/oddeven_walkthrough.cpp.o"
  "CMakeFiles/oddeven_walkthrough.dir/oddeven_walkthrough.cpp.o.d"
  "oddeven_walkthrough"
  "oddeven_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oddeven_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
