# Empty compiler generated dependencies file for oddeven_walkthrough.
# This may be replaced when dependencies are built.
