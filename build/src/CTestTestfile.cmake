# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("compress")
subdirs("trace")
subdirs("instrument")
subdirs("simmpi")
subdirs("simomp")
subdirs("apps")
subdirs("core")
subdirs("cli")
