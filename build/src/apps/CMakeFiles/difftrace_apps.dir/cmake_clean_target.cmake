file(REMOVE_RECURSE
  "libdifftrace_apps.a"
)
