# Empty compiler generated dependencies file for difftrace_apps.
# This may be replaced when dependencies are built.
