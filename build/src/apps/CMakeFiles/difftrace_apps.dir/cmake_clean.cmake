file(REMOVE_RECURSE
  "CMakeFiles/difftrace_apps.dir/ilcs.cpp.o"
  "CMakeFiles/difftrace_apps.dir/ilcs.cpp.o.d"
  "CMakeFiles/difftrace_apps.dir/lulesh.cpp.o"
  "CMakeFiles/difftrace_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/difftrace_apps.dir/oddeven.cpp.o"
  "CMakeFiles/difftrace_apps.dir/oddeven.cpp.o.d"
  "CMakeFiles/difftrace_apps.dir/runner.cpp.o"
  "CMakeFiles/difftrace_apps.dir/runner.cpp.o.d"
  "CMakeFiles/difftrace_apps.dir/tsp.cpp.o"
  "CMakeFiles/difftrace_apps.dir/tsp.cpp.o.d"
  "libdifftrace_apps.a"
  "libdifftrace_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
