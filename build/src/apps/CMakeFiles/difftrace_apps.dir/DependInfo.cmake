
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ilcs.cpp" "src/apps/CMakeFiles/difftrace_apps.dir/ilcs.cpp.o" "gcc" "src/apps/CMakeFiles/difftrace_apps.dir/ilcs.cpp.o.d"
  "/root/repo/src/apps/lulesh.cpp" "src/apps/CMakeFiles/difftrace_apps.dir/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/difftrace_apps.dir/lulesh.cpp.o.d"
  "/root/repo/src/apps/oddeven.cpp" "src/apps/CMakeFiles/difftrace_apps.dir/oddeven.cpp.o" "gcc" "src/apps/CMakeFiles/difftrace_apps.dir/oddeven.cpp.o.d"
  "/root/repo/src/apps/runner.cpp" "src/apps/CMakeFiles/difftrace_apps.dir/runner.cpp.o" "gcc" "src/apps/CMakeFiles/difftrace_apps.dir/runner.cpp.o.d"
  "/root/repo/src/apps/tsp.cpp" "src/apps/CMakeFiles/difftrace_apps.dir/tsp.cpp.o" "gcc" "src/apps/CMakeFiles/difftrace_apps.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/difftrace_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simomp/CMakeFiles/difftrace_simomp.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/difftrace_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/difftrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/difftrace_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/difftrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
