file(REMOVE_RECURSE
  "libdifftrace_compress.a"
)
