# Empty dependencies file for difftrace_compress.
# This may be replaced when dependencies are built.
