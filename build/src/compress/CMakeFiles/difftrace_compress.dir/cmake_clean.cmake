file(REMOVE_RECURSE
  "CMakeFiles/difftrace_compress.dir/codec.cpp.o"
  "CMakeFiles/difftrace_compress.dir/codec.cpp.o.d"
  "CMakeFiles/difftrace_compress.dir/lz_codec.cpp.o"
  "CMakeFiles/difftrace_compress.dir/lz_codec.cpp.o.d"
  "CMakeFiles/difftrace_compress.dir/null_codec.cpp.o"
  "CMakeFiles/difftrace_compress.dir/null_codec.cpp.o.d"
  "CMakeFiles/difftrace_compress.dir/parlot_codec.cpp.o"
  "CMakeFiles/difftrace_compress.dir/parlot_codec.cpp.o.d"
  "libdifftrace_compress.a"
  "libdifftrace_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
