file(REMOVE_RECURSE
  "libdifftrace_trace.a"
)
