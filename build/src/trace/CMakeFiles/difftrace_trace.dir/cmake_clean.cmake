file(REMOVE_RECURSE
  "CMakeFiles/difftrace_trace.dir/export.cpp.o"
  "CMakeFiles/difftrace_trace.dir/export.cpp.o.d"
  "CMakeFiles/difftrace_trace.dir/registry.cpp.o"
  "CMakeFiles/difftrace_trace.dir/registry.cpp.o.d"
  "CMakeFiles/difftrace_trace.dir/store.cpp.o"
  "CMakeFiles/difftrace_trace.dir/store.cpp.o.d"
  "CMakeFiles/difftrace_trace.dir/writer.cpp.o"
  "CMakeFiles/difftrace_trace.dir/writer.cpp.o.d"
  "libdifftrace_trace.a"
  "libdifftrace_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
