# Empty dependencies file for difftrace_trace.
# This may be replaced when dependencies are built.
