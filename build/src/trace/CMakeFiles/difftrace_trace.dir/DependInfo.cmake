
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/export.cpp" "src/trace/CMakeFiles/difftrace_trace.dir/export.cpp.o" "gcc" "src/trace/CMakeFiles/difftrace_trace.dir/export.cpp.o.d"
  "/root/repo/src/trace/registry.cpp" "src/trace/CMakeFiles/difftrace_trace.dir/registry.cpp.o" "gcc" "src/trace/CMakeFiles/difftrace_trace.dir/registry.cpp.o.d"
  "/root/repo/src/trace/store.cpp" "src/trace/CMakeFiles/difftrace_trace.dir/store.cpp.o" "gcc" "src/trace/CMakeFiles/difftrace_trace.dir/store.cpp.o.d"
  "/root/repo/src/trace/writer.cpp" "src/trace/CMakeFiles/difftrace_trace.dir/writer.cpp.o" "gcc" "src/trace/CMakeFiles/difftrace_trace.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/difftrace_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/difftrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
