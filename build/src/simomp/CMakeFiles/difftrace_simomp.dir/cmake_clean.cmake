file(REMOVE_RECURSE
  "CMakeFiles/difftrace_simomp.dir/team.cpp.o"
  "CMakeFiles/difftrace_simomp.dir/team.cpp.o.d"
  "libdifftrace_simomp.a"
  "libdifftrace_simomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_simomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
