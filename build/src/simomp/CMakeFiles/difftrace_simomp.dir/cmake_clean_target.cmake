file(REMOVE_RECURSE
  "libdifftrace_simomp.a"
)
