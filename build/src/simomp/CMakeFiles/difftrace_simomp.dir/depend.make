# Empty dependencies file for difftrace_simomp.
# This may be replaced when dependencies are built.
