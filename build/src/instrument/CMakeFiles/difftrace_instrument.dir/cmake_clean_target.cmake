file(REMOVE_RECURSE
  "libdifftrace_instrument.a"
)
