# Empty compiler generated dependencies file for difftrace_instrument.
# This may be replaced when dependencies are built.
