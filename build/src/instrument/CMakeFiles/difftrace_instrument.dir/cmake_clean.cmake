file(REMOVE_RECURSE
  "CMakeFiles/difftrace_instrument.dir/tracer.cpp.o"
  "CMakeFiles/difftrace_instrument.dir/tracer.cpp.o.d"
  "libdifftrace_instrument.a"
  "libdifftrace_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
