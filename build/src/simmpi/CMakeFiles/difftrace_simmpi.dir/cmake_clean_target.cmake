file(REMOVE_RECURSE
  "libdifftrace_simmpi.a"
)
