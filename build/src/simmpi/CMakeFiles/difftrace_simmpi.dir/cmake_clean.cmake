file(REMOVE_RECURSE
  "CMakeFiles/difftrace_simmpi.dir/comm.cpp.o"
  "CMakeFiles/difftrace_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/difftrace_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/difftrace_simmpi.dir/runtime.cpp.o.d"
  "CMakeFiles/difftrace_simmpi.dir/world.cpp.o"
  "CMakeFiles/difftrace_simmpi.dir/world.cpp.o.d"
  "libdifftrace_simmpi.a"
  "libdifftrace_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
