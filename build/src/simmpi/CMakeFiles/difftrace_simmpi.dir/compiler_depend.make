# Empty compiler generated dependencies file for difftrace_simmpi.
# This may be replaced when dependencies are built.
