file(REMOVE_RECURSE
  "CMakeFiles/difftrace_cli.dir/args.cpp.o"
  "CMakeFiles/difftrace_cli.dir/args.cpp.o.d"
  "CMakeFiles/difftrace_cli.dir/commands.cpp.o"
  "CMakeFiles/difftrace_cli.dir/commands.cpp.o.d"
  "libdifftrace_cli.a"
  "libdifftrace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
