# Empty compiler generated dependencies file for difftrace_cli.
# This may be replaced when dependencies are built.
