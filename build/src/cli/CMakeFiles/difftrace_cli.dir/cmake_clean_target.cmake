file(REMOVE_RECURSE
  "libdifftrace_cli.a"
)
