file(REMOVE_RECURSE
  "libdifftrace_core.a"
)
