file(REMOVE_RECURSE
  "CMakeFiles/difftrace_core.dir/attributes.cpp.o"
  "CMakeFiles/difftrace_core.dir/attributes.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/bscore.cpp.o"
  "CMakeFiles/difftrace_core.dir/bscore.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/diff.cpp.o"
  "CMakeFiles/difftrace_core.dir/diff.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/diffnlr.cpp.o"
  "CMakeFiles/difftrace_core.dir/diffnlr.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/fca.cpp.o"
  "CMakeFiles/difftrace_core.dir/fca.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/filter.cpp.o"
  "CMakeFiles/difftrace_core.dir/filter.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/hclust.cpp.o"
  "CMakeFiles/difftrace_core.dir/hclust.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/jsm.cpp.o"
  "CMakeFiles/difftrace_core.dir/jsm.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/nlr.cpp.o"
  "CMakeFiles/difftrace_core.dir/nlr.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/pipeline.cpp.o"
  "CMakeFiles/difftrace_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/report.cpp.o"
  "CMakeFiles/difftrace_core.dir/report.cpp.o.d"
  "CMakeFiles/difftrace_core.dir/triage.cpp.o"
  "CMakeFiles/difftrace_core.dir/triage.cpp.o.d"
  "libdifftrace_core.a"
  "libdifftrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
