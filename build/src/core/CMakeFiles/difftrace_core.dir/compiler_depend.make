# Empty compiler generated dependencies file for difftrace_core.
# This may be replaced when dependencies are built.
