
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attributes.cpp" "src/core/CMakeFiles/difftrace_core.dir/attributes.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/attributes.cpp.o.d"
  "/root/repo/src/core/bscore.cpp" "src/core/CMakeFiles/difftrace_core.dir/bscore.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/bscore.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/difftrace_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/diffnlr.cpp" "src/core/CMakeFiles/difftrace_core.dir/diffnlr.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/diffnlr.cpp.o.d"
  "/root/repo/src/core/fca.cpp" "src/core/CMakeFiles/difftrace_core.dir/fca.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/fca.cpp.o.d"
  "/root/repo/src/core/filter.cpp" "src/core/CMakeFiles/difftrace_core.dir/filter.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/filter.cpp.o.d"
  "/root/repo/src/core/hclust.cpp" "src/core/CMakeFiles/difftrace_core.dir/hclust.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/hclust.cpp.o.d"
  "/root/repo/src/core/jsm.cpp" "src/core/CMakeFiles/difftrace_core.dir/jsm.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/jsm.cpp.o.d"
  "/root/repo/src/core/nlr.cpp" "src/core/CMakeFiles/difftrace_core.dir/nlr.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/nlr.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/difftrace_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/difftrace_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/report.cpp.o.d"
  "/root/repo/src/core/triage.cpp" "src/core/CMakeFiles/difftrace_core.dir/triage.cpp.o" "gcc" "src/core/CMakeFiles/difftrace_core.dir/triage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/difftrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/difftrace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/difftrace_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
