# Empty compiler generated dependencies file for difftrace_util.
# This may be replaced when dependencies are built.
