file(REMOVE_RECURSE
  "libdifftrace_util.a"
)
