file(REMOVE_RECURSE
  "CMakeFiles/difftrace_util.dir/bitset.cpp.o"
  "CMakeFiles/difftrace_util.dir/bitset.cpp.o.d"
  "CMakeFiles/difftrace_util.dir/stats.cpp.o"
  "CMakeFiles/difftrace_util.dir/stats.cpp.o.d"
  "CMakeFiles/difftrace_util.dir/str.cpp.o"
  "CMakeFiles/difftrace_util.dir/str.cpp.o.d"
  "CMakeFiles/difftrace_util.dir/table.cpp.o"
  "CMakeFiles/difftrace_util.dir/table.cpp.o.d"
  "CMakeFiles/difftrace_util.dir/varint.cpp.o"
  "CMakeFiles/difftrace_util.dir/varint.cpp.o.d"
  "libdifftrace_util.a"
  "libdifftrace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftrace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
