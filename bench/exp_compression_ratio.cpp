// E8 — the ParLOT efficiency claims (§I / §II-A): whole-program tracing is
// practical because on-the-fly compression shrinks the per-thread streams
// to a few KB. We measure all three codecs on real traces from the three
// miniapps and report the compression ratio (raw 4-byte symbols vs stored
// bytes) and bytes per event — the paper's "compression ratios exceeding
// 21,000 / a few kilobytes per second per core" shape.
#include "exp_common.hpp"

using namespace difftrace;

namespace {

void measure(const char* app_name, const trace::TraceStore& store) {
  for (const auto& codec_name : compress::codec_names()) {
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;
    for (const auto& key : store.keys()) {
      const auto decoded = store.decode(key);
      auto codec = compress::make_codec(codec_name);
      for (const auto& event : decoded) codec.encoder->push(trace::event_to_symbol(event));
      codec.encoder->flush();
      events += decoded.size();
      bytes += codec.encoder->bytes().size();
    }
    const double ratio = bytes == 0 ? 0.0
                                    : static_cast<double>(events * sizeof(compress::Symbol)) /
                                          static_cast<double>(bytes);
    std::printf("  %-10s codec=%-7s events=%9llu stored=%9llu B  ratio=%8.1fx  B/event=%.4f\n",
                app_name, codec_name.c_str(), static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(bytes), ratio,
                events == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(events));
  }
}

}  // namespace

int main() {
  bench::banner("E8 / ParLOT compression-ratio claim across miniapps and codecs");
  {
    auto run = bench::collect_odd_even(16, {});
    measure("oddeven", run.store);
  }
  {
    auto run = bench::collect_ilcs({});
    measure("ilcs-tsp", run.store);
  }
  {
    auto run = bench::collect_lulesh({}, /*cycles=*/8, /*elements=*/64);
    measure("lulesh", run.store);
  }
  {
    // Long steady-state run: compression ratio of the streaming predictor
    // grows with trace length (ParLOT's headline numbers come from
    // million-event production traces).
    auto run = bench::collect_lulesh({}, /*cycles=*/32, /*elements=*/256);
    measure("lulesh-XL", run.store);
  }
  std::printf(
      "\nshape check: on regular traces (oddeven, lulesh) the \"parlot\" predictor wins and its\n"
      "ratio grows with trace length (lulesh vs lulesh-XL); on ILCS's irregular 2-opt traces the\n"
      "dictionary codec (lz78) wins — the codec-choice ablation of DESIGN.md. \"null\" is the\n"
      "4 B/event baseline.\n");
  return 0;
}
