// P3 — Myers diff: O((N+M)·D). Cost scales with edit distance D, not with
// sequence length alone — similar traces (the diffNLR case) diff almost for
// free regardless of length.
#include <benchmark/benchmark.h>

#include "core/diff.hpp"
#include "util/prng.hpp"

using namespace difftrace;

namespace {

std::vector<std::uint32_t> base_sequence(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> out(n);
  for (auto& v : out) v = static_cast<std::uint32_t>(rng.below(64));
  return out;
}

/// b = a with `edits` random single-token replacements.
std::vector<std::uint32_t> perturb(std::vector<std::uint32_t> a, std::size_t edits,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < edits && !a.empty(); ++i)
    a[rng.below(a.size())] = 1000 + static_cast<std::uint32_t>(rng.below(64));
  return a;
}

void BM_DiffVsLength_SmallEdit(benchmark::State& state) {
  const auto a = base_sequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = perturb(a, 8, 2);
  for (auto _ : state) {
    auto script = core::myers_diff(a, b);
    benchmark::DoNotOptimize(script);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DiffVsLength_SmallEdit)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_DiffVsEditDistance(benchmark::State& state) {
  const auto a = base_sequence(20'000, 3);
  const auto b = perturb(a, static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto script = core::myers_diff(a, b);
    benchmark::DoNotOptimize(script);
  }
  state.counters["edits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DiffVsEditDistance)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_DiffIdentical(benchmark::State& state) {
  const auto a = base_sequence(100'000, 5);
  for (auto _ : state) {
    auto script = core::myers_diff(a, a);
    benchmark::DoNotOptimize(script);
  }
}
BENCHMARK(BM_DiffIdentical);

}  // namespace
