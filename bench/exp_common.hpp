// Shared plumbing for the experiment harnesses: collect traced runs of the
// three miniapps at paper scale and print section banners.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "apps/ilcs.hpp"
#include "apps/lulesh.hpp"
#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

namespace difftrace::bench {

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline simmpi::WorldConfig world_for(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(10);
  config.wall_timeout = std::chrono::milliseconds(120'000);
  return config;
}

struct Collected {
  trace::TraceStore store;
  simmpi::RunReport report;
};

inline Collected collect_odd_even(int nranks, apps::FaultSpec fault,
                                  instrument::CaptureLevel level = instrument::CaptureLevel::MainImage) {
  apps::OddEvenConfig app;
  app.nranks = nranks;
  app.elements_per_rank = 16;
  app.fault = fault;
  auto run = apps::run_traced(world_for(nranks),
                              [app](simmpi::Comm& comm) { apps::odd_even_rank(comm, app); }, level);
  return {std::move(run.store), std::move(run.report)};
}

/// `ncities` tunes the workload character per experiment. Small instances
/// (default) give fast evaluations and stable per-worker trace shapes — what
/// the OpenMP-bug ranking (E4) needs. The wrong-op experiment (E6) passes a
/// hard instance instead: on tiny ones every 2-opt restart ties at the
/// global optimum, the lowest-rank tiebreak parks champion ownership on
/// rank 0 permanently, and the §IV-D ownership shift becomes invisible.
inline Collected collect_ilcs(apps::FaultSpec fault,
                              instrument::CaptureLevel level = instrument::CaptureLevel::MainImage,
                              std::size_t ncities = 14) {
  apps::IlcsConfig app;  // paper scale: 8 processes x 4 worker threads
  app.nranks = 8;
  app.workers = 4;
  app.ncities = ncities;
  // Longer rounds than the unit-test defaults: every worker completes many
  // evaluations in both the normal and the faulty run, so run-to-run
  // behaviour drift (which the paper's cluster-scale runs amortize over
  // minutes) does not drown the injected signal.
  app.round_pacing = std::chrono::milliseconds(3);
  app.patience = 3;
  app.fault = fault;
  auto run = apps::run_traced(world_for(app.nranks),
                              [app](simmpi::Comm& comm) { apps::ilcs_rank(comm, app); }, level);
  return {std::move(run.store), std::move(run.report)};
}

inline Collected collect_lulesh(apps::FaultSpec fault, int cycles = 4, int elements = 32) {
  apps::LuleshConfig app;  // paper scale: 8 processes x 4 OMP threads
  app.nranks = 8;
  app.omp_threads = 4;
  app.elements_per_rank = elements;
  app.cycles = cycles;
  app.fault = fault;
  auto run = apps::run_traced(world_for(app.nranks),
                              [app](simmpi::Comm& comm) { apps::lulesh_rank(comm, app); });
  return {std::move(run.store), std::move(run.report)};
}

inline void note_report(const simmpi::RunReport& report) {
  if (report.deadlock)
    std::printf("[watchdog] %s\n", report.deadlock_info.c_str());
  else
    std::printf("[run completed normally]\n");
}

}  // namespace difftrace::bench
