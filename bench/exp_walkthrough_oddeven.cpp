// E2 — Tables II/III/IV, Figures 3/4: the §II odd/even-sort walkthrough at
// the paper's 4-process scale, regenerated from a live traced run.
#include <set>

#include "core/attributes.hpp"
#include "core/fca.hpp"
#include "core/jsm.hpp"
#include "exp_common.hpp"
#include "util/table.hpp"

using namespace difftrace;

int main() {
  auto collected = bench::collect_odd_even(4, {});
  const auto& store = collected.store;
  const auto filter = core::FilterSpec::mpi_all();

  bench::banner("E2 / Table II: pre-processed traces of odd/even sort (4 processes)");
  bench::note_report(collected.report);
  for (const auto& key : store.keys()) {
    std::printf("T%d: ", key.proc);
    for (const auto& token : filter.apply(store, key)) std::printf("%s ", token.c_str());
    std::printf("\n");
  }

  bench::banner("E2 / Table III: NLR of traces (K=10)");
  core::TokenTable tokens;
  core::LoopTable loops;
  std::vector<core::NlrProgram> programs;
  for (const auto& key : store.keys()) {
    programs.push_back(core::build_nlr(tokens.intern_all(filter.apply(store, key)), loops));
    std::printf("T%d: ", key.proc);
    for (const auto& item : programs.back())
      std::printf("%s ", core::item_label(item, tokens).c_str());
    std::printf("\n");
  }
  for (std::size_t l = 0; l < loops.size(); ++l) {
    std::printf("  L%zu = [", l);
    for (std::size_t i = 0; i < loops.body(l).size(); ++i)
      std::printf("%s%s", i ? " " : "", core::item_label(loops.body(l)[i], tokens).c_str());
    std::printf("]\n");
  }

  bench::banner("E2 / Table IV: formal context (sing.noFreq)");
  core::FormalContext context;
  std::vector<std::set<std::string>> attr_sets;
  for (std::size_t g = 0; g < programs.size(); ++g) {
    context.add_object("Trace " + std::to_string(g));
    // Shallow mining (deep = false): literal Table V semantics, so the
    // printed context matches the paper's Table IV column-for-column.
    attr_sets.push_back(core::mine_attributes(
        programs[g], tokens, loops,
        {core::AttrKind::Single, core::FreqMode::NoFreq, /*deep=*/false}));
    for (const auto& attr : attr_sets.back()) context.set_incidence(g, attr);
  }
  std::printf("%s", context.render().c_str());

  bench::banner("E2 / Figure 3: concept lattice (Godin-style incremental)");
  const auto lattice = core::incremental_lattice(context);
  std::printf("%s", lattice.render(context).c_str());

  bench::banner("E2 / Figure 4: pairwise Jaccard similarity matrix");
  const auto jsm = core::jsm_from_attributes(attr_sets);
  std::printf("%s", util::render_heatmap(jsm, "JSM heatmap (dark = similar)").c_str());
  std::printf("\nnumeric JSM:\n");
  for (std::size_t i = 0; i < jsm.rows(); ++i) {
    std::printf("  T%zu:", i);
    for (std::size_t j = 0; j < jsm.cols(); ++j) std::printf(" %5.3f", jsm(i, j));
    std::printf("\n");
  }
  std::printf("\npaper shape check: T0~T2 and T1~T3 at 1.000, cross pairs at 0.667\n");
  return 0;
}
