// E1 — Table I: the pre-defined filter catalogue, demonstrated on a live
// ILCS trace. For each filter row we report how many of the raw events
// survive and a sample of the retained names.
#include <set>

#include "exp_common.hpp"
#include "util/table.hpp"

using namespace difftrace;

int main() {
  bench::banner("E1 / Table I: pre-defined front-end filters on an ILCS trace");
  auto collected = bench::collect_ilcs({}, instrument::CaptureLevel::AllImages);
  bench::note_report(collected.report);
  const auto& store = collected.store;
  const trace::TraceKey key{0, 0};
  const auto raw_events = store.decode(key).size();
  std::printf("raw events in trace %s (all images): %zu\n\n", key.label().c_str(), raw_events);

  struct Row {
    const char* category;
    const char* description;
    core::FilterSpec filter;
  };
  core::FilterSpec returns_kept = core::FilterSpec::everything().drop_returns(false).drop_plt(false);
  core::FilterSpec plt_only = core::FilterSpec::everything().drop_plt(false);
  core::FilterSpec mpi_internal;
  mpi_internal.keep(core::Category::MpiInternal);
  core::FilterSpec omp_mutex;
  omp_mutex.keep(core::Category::OmpMutex);
  core::FilterSpec poll;
  poll.keep(core::Category::Poll);
  core::FilterSpec str;
  str.keep(core::Category::String);
  core::FilterSpec custom;
  custom.keep_custom("^CPU_");

  const Row rows[] = {
      {"Primary/Returns+PLT kept", "keep everything incl. returns and @plt", returns_kept},
      {"Primary/PLT kept", "calls only, @plt stubs retained", plt_only},
      {"MPI/All", "functions starting with MPI_", core::FilterSpec::mpi_all()},
      {"MPI/Collectives", "MPI_Barrier, MPI_Allreduce, ...", core::FilterSpec::mpi_collectives()},
      {"MPI/SendRecv", "MPI_Send/Isend/Recv/Irecv/Wait", core::FilterSpec::mpi_send_recv()},
      {"MPI/Internal", "inner MPI library calls", mpi_internal},
      {"OMP/All", "GOMP_* runtime entries", core::FilterSpec::omp_all()},
      {"OMP/Critical", "GOMP_critical_start/end", core::FilterSpec::omp_critical()},
      {"OMP/Mutex", "mutex-named functions", omp_mutex},
      {"System/Memory", "memcpy/malloc/free/...", core::FilterSpec::memory()},
      {"System/Poll", "poll/yield/sched", poll},
      {"System/String", "str* functions", str},
      {"Advanced/Custom", "regex ^CPU_ (the ILCS user code)", custom},
      {"Advanced/Everything", "no keep-filtering", core::FilterSpec::everything()},
  };

  util::TextTable table({"Category", "Canonical name", "Kept", "Sample"});
  for (const auto& row : rows) {
    const auto tokens = row.filter.apply(store, key);
    std::set<std::string> distinct(tokens.begin(), tokens.end());
    std::string sample;
    std::size_t shown = 0;
    for (const auto& name : distinct) {
      if (shown++ == 3) break;
      if (!sample.empty()) sample += ", ";
      sample += name;
    }
    table.add_row({row.category, row.filter.name(), std::to_string(tokens.size()), sample});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
