// P2 — FCA construction cost: Godin-style incremental insertion vs Ganter's
// batch NextClosure (the DESIGN.md ablation), and the two JSM paths.
#include <benchmark/benchmark.h>

#include "core/fca.hpp"
#include "core/jsm.hpp"
#include "util/prng.hpp"

using namespace difftrace;

namespace {

core::FormalContext random_context(std::size_t objects, std::size_t attributes, double density,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  core::FormalContext ctx;
  for (std::size_t m = 0; m < attributes; ++m) ctx.add_attribute("m" + std::to_string(m));
  for (std::size_t g = 0; g < objects; ++g) {
    ctx.add_object("g" + std::to_string(g));
    for (std::size_t m = 0; m < attributes; ++m)
      if (rng.uniform() < density) ctx.set_incidence(g, m);
  }
  return ctx;
}

void BM_IncrementalLattice(benchmark::State& state) {
  const auto ctx = random_context(static_cast<std::size_t>(state.range(0)), 24, 0.4, 11);
  for (auto _ : state) {
    auto lattice = core::incremental_lattice(ctx);
    benchmark::DoNotOptimize(lattice);
    state.counters["concepts"] = static_cast<double>(lattice.size());
  }
}
BENCHMARK(BM_IncrementalLattice)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_NextClosureLattice(benchmark::State& state) {
  const auto ctx = random_context(static_cast<std::size_t>(state.range(0)), 24, 0.4, 11);
  for (auto _ : state) {
    auto lattice = core::next_closure_lattice(ctx);
    benchmark::DoNotOptimize(lattice);
  }
}
BENCHMARK(BM_NextClosureLattice)->Arg(8)->Arg(16)->Arg(32);

void BM_IncrementalInsertOneObject(benchmark::State& state) {
  // The streaming case the paper cares about: cost of absorbing one more
  // trace into an existing lattice.
  const auto ctx = random_context(static_cast<std::size_t>(state.range(0)), 24, 0.4, 13);
  util::Xoshiro256 rng(99);
  util::DynamicBitset extra(24);
  for (std::size_t m = 0; m < 24; ++m)
    if (rng.uniform() < 0.4) extra.set(m);
  for (auto _ : state) {
    state.PauseTiming();
    core::IncrementalLattice inc(ctx.attribute_count());
    for (std::size_t g = 0; g < ctx.object_count(); ++g) inc.add_object(ctx.object_intent(g));
    state.ResumeTiming();
    inc.add_object(extra);
    benchmark::DoNotOptimize(inc);
  }
}
BENCHMARK(BM_IncrementalInsertOneObject)->Arg(8)->Arg(32)->Arg(64);

void BM_JsmFromAttributes(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  std::vector<std::set<std::string>> attrs(static_cast<std::size_t>(state.range(0)));
  for (auto& s : attrs)
    for (int i = 0; i < 60; ++i) s.insert("attr" + std::to_string(rng.below(200)));
  for (auto _ : state) {
    auto m = core::jsm_from_attributes(attrs);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_JsmFromAttributes)->Arg(16)->Arg(40)->Arg(80);

void BM_JsmFromLattice(benchmark::State& state) {
  const auto ctx = random_context(static_cast<std::size_t>(state.range(0)), 24, 0.4, 17);
  const auto lattice = core::incremental_lattice(ctx);
  for (auto _ : state) {
    auto m = core::jsm_from_lattice(lattice, ctx.object_count());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_JsmFromLattice)->Arg(16)->Arg(40);

}  // namespace
