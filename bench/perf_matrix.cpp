// PR6 — the fault injector's clean-path cost. Every simmpi API entry now
// runs fault_prologue (an `active()` load, plus an op-cursor bump when a
// plan is armed), so the question the matrix's credibility rests on is:
// what does tracing a *clean* run cost with the injector compiled in, and
// with it armed-but-missing? The contract is <= 1% over the trace phase.
//
// Modes, mirroring perf_sweep:
//   perf_matrix [gbench flags]   google-benchmark timings (default)
//   perf_matrix --json[=PATH]    interleaved instrumented collections under
//                                spans collect_clean / collect_armed_miss /
//                                collect_injected, emitted as a run manifest
//                                (the BENCH_matrix.json format). Counter
//                                bench.armed_overhead_bp carries the median
//                                armed-miss overhead in basis points.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/catalog.hpp"
#include "apps/runner.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "sched/pool.hpp"
#include "simfault/injector.hpp"

using namespace difftrace;

namespace {

/// One traced stencil collection (4 ranks, default params). Arms `plan` for
/// the duration when it is a runtime class; FaultPlan{} collects clean.
trace::TraceStore collect_once(const simfault::FaultPlan& plan) {
  const auto* app = apps::find_app("stencil");
  apps::AppParams params;
  params.plan = plan;
  const auto fn = apps::make_rank_fn(*app, params);
  const auto resolved = apps::resolve_params(*app, params);
  simmpi::WorldConfig world;
  world.nranks = resolved.nranks;
  std::optional<simfault::InjectorSession> session;
  if (simfault::is_runtime_class(resolved.plan.cls))
    session.emplace(resolved.plan, app->shape(resolved));
  return apps::run_traced(world, fn).store;
}

/// Armed but never firing: a valid rank with an op index no rank reaches.
/// This is the "injector compiled in AND armed" hot path — every API entry
/// pays the cursor bump and predicate check, no decision ever fires.
simfault::FaultPlan armed_miss_plan() {
  return simfault::parse_plan("delay@rank=3,op=1000000");
}

simfault::FaultPlan injected_plan() { return simfault::parse_plan("delay@rank=2,op=6,ticks=24"); }

void BM_CollectClean(benchmark::State& state) {
  for (auto _ : state) {
    auto store = collect_once({});
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_CollectClean)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_CollectArmedMiss(benchmark::State& state) {
  const auto plan = armed_miss_plan();
  for (auto _ : state) {
    auto store = collect_once(plan);
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_CollectArmedMiss)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_CollectInjected(benchmark::State& state) {
  const auto plan = injected_plan();
  for (auto _ : state) {
    auto store = collect_once(plan);
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_CollectInjected)->UseRealTime()->Unit(benchmark::kMillisecond);

/// The disarmed fast path in isolation: one relaxed atomic load per hook.
void BM_HookDisarmed(benchmark::State& state) {
  simfault::Injector::instance().disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simfault::hooks::active());
    benchmark::DoNotOptimize(simfault::hooks::delay_ticks(0, 3));
  }
}
BENCHMARK(BM_HookDisarmed);

// --- manifest mode (--json) --------------------------------------------------

/// Interleaved reps (clean, armed-miss, injected, repeat) so drift hits all
/// three alike; medians feed the overhead counters. Returns nonzero when the
/// injected pass never fires — the bench doubles as an arming smoke test.
int run_manifest_mode(const std::vector<std::string>& command, const std::string& json_path,
                      const std::string& selftrace_path) {
  using clock = std::chrono::steady_clock;
  obs::MetricsRegistry::instance().reset();
  obs::PhaseTable::instance().reset();
  if (!selftrace_path.empty()) obs::SelfTrace::instance().start();
  constexpr int kReps = 9;
  bool injected_fired = true;
  std::vector<double> clean_ms, armed_ms, injected_ms;
  {
    obs::Span span_root("perf_matrix");
    const auto timed = [](const char* phase, std::vector<double>& sink, const auto& body) {
      obs::Span span(phase);
      const auto start = clock::now();
      body();
      sink.push_back(std::chrono::duration<double, std::milli>(clock::now() - start).count());
    };
    // Warm-up collection: first-run costs (registry, thread spin-up) land
    // outside the measured reps.
    benchmark::DoNotOptimize(collect_once({}));
    for (int rep = 0; rep < kReps; ++rep) {
      timed("collect_clean", clean_ms, [] { benchmark::DoNotOptimize(collect_once({})); });
      timed("collect_armed_miss", armed_ms,
            [] { benchmark::DoNotOptimize(collect_once(armed_miss_plan())); });
      timed("collect_injected", injected_ms, [&injected_fired] {
        const auto plan = injected_plan();
        const auto* app = apps::find_app("stencil");
        apps::AppParams params;
        params.plan = plan;
        const auto fn = apps::make_rank_fn(*app, params);
        const auto resolved = apps::resolve_params(*app, params);
        simmpi::WorldConfig world;
        world.nranks = resolved.nranks;
        const simfault::InjectorSession session(resolved.plan, app->shape(resolved));
        benchmark::DoNotOptimize(apps::run_traced(world, fn).store);
        injected_fired = injected_fired && session.fired() > 0;
      });
    }
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double clean = median(clean_ms);
  const double armed = median(armed_ms);
  const double injected = median(injected_ms);
  // Basis points over clean (100 bp = 1%); clamped at zero — noise can put
  // the armed median under the clean one.
  const auto overhead_bp = [clean](double ms) {
    return static_cast<std::uint64_t>(std::max(0.0, (ms - clean) / clean * 10'000.0));
  };
  obs::counter("bench.armed_overhead_bp").add(overhead_bp(armed));
  obs::counter("bench.injected_overhead_bp").add(overhead_bp(injected));
  std::cerr << "[stats] median collect ms: clean " << clean << ", armed-miss " << armed
            << " (+" << overhead_bp(armed) << " bp), injected " << injected << " (+"
            << overhead_bp(injected) << " bp)\n";
  if (!injected_fired) std::cerr << "perf_matrix: injected plan never fired\n";

  auto manifest = obs::collect_manifest(command, {}, injected_fired ? 0 : 1);
  if (!selftrace_path.empty()) {
    const auto self_store = obs::SelfTrace::instance().stop();
    self_store.save(selftrace_path);
    std::cerr << "[self-trace] " << self_store.size() << " stream(s) written to "
              << selftrace_path << "\n";
    manifest.self_trace = selftrace_path;
  }
  manifest.jobs = sched::hardware_jobs();
  if (json_path.empty()) {
    manifest.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "perf_matrix: cannot write '" << json_path << "'\n";
      return 1;
    }
    manifest.write_json(file);
    file << "\n";
    std::cerr << "[stats] manifest written to " << json_path << "\n";
  }
  return injected_fired ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::string json_path;
  std::string selftrace_path;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--self-trace") {
      selftrace_path = "perf_matrix.selftrace.dtrc";
    } else if (arg.rfind("--self-trace=", 0) == 0) {
      selftrace_path = arg.substr(13);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_json)
    return run_manifest_mode({bench_argv.empty() ? "perf_matrix" : bench_argv[0], "--json"},
                             json_path, selftrace_path);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
