// P1 — NLR cost: the paper states Θ(K²·N). Sweeps N at fixed K and K at
// fixed N over a loopy synthetic trace, plus the reduction-factor ablation
// for the K=10-vs-50 comparison of §V.
#include <benchmark/benchmark.h>

#include "core/nlr.hpp"
#include "util/prng.hpp"

using namespace difftrace;

namespace {

std::vector<core::TokenId> loopy_trace(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<core::TokenId> out;
  out.reserve(n);
  while (out.size() < n) {
    const auto body_len = 1 + rng.below(6);
    const auto reps = 2 + rng.below(20);
    std::vector<core::TokenId> body;
    for (std::size_t i = 0; i < body_len; ++i) body.push_back(static_cast<core::TokenId>(rng.below(32)));
    for (std::size_t r = 0; r < reps && out.size() < n; ++r)
      for (const auto t : body) out.push_back(t);
  }
  return out;
}

void BM_NlrVsN(benchmark::State& state) {
  const auto input = loopy_trace(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    core::LoopTable loops;
    auto program = core::build_nlr(input, loops, core::NlrConfig{.k = 10});
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NlrVsN)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_NlrVsK(benchmark::State& state) {
  const auto input = loopy_trace(20'000, 42);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::LoopTable loops;
    auto program = core::build_nlr(input, loops, core::NlrConfig{.k = k});
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 20'000);
}
BENCHMARK(BM_NlrVsK)->Arg(2)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

/// Ablation: reduction factor as a function of K (reported as a counter).
void BM_NlrReductionFactor(benchmark::State& state) {
  const auto input = loopy_trace(50'000, 7);
  const auto k = static_cast<std::size_t>(state.range(0));
  double factor = 0.0;
  for (auto _ : state) {
    core::LoopTable loops;
    const auto program = core::build_nlr(input, loops, core::NlrConfig{.k = k});
    factor = static_cast<double>(input.size()) / static_cast<double>(program.size());
    benchmark::DoNotOptimize(factor);
  }
  state.counters["reduction"] = factor;
}
BENCHMARK(BM_NlrReductionFactor)->Arg(10)->Arg(50);

void BM_NlrExpand(benchmark::State& state) {
  const auto input = loopy_trace(50'000, 3);
  core::LoopTable loops;
  const auto program = core::build_nlr(input, loops, core::NlrConfig{.k = 10});
  for (auto _ : state) {
    auto expanded = core::expand_nlr(program, loops);
    benchmark::DoNotOptimize(expanded);
  }
}
BENCHMARK(BM_NlrExpand);

}  // namespace
