// A1 — ablations over the design choices DESIGN.md calls out:
//   1. NLR constants (K, min_reps, known-body folding) — reduction power
//      and whether the Figure-5 diff shape survives,
//   2. linkage method — is the swapBug verdict robust to the clustering
//      knob the paper fixes to ward?
//   3. deep vs shallow single-attribute mining — rank of the true culprit
//      under the noisy asynchronous ILCS workload.
#include <algorithm>

#include "exp_common.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace difftrace;

namespace {

void nlr_knob_ablation(const trace::TraceStore& normal, const trace::TraceStore& faulty) {
  bench::banner("A1.1 / NLR knobs: K, min_reps, known-body folding (odd/even swapBug)");
  util::TextTable table({"K", "min_reps", "fold", "mean NLR items", "Fig-5 diff shape"});
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{10}, std::size_t{50}}) {
    for (const std::size_t reps : {std::size_t{2}, std::size_t{3}}) {
      for (const bool fold : {false, true}) {
        core::NlrConfig nlr{.k = k, .min_reps = reps, .fold_known_bodies = fold};
        const core::Session session(normal, faulty, core::FilterSpec::mpi_all(), nlr);
        double total = 0.0;
        for (std::size_t i = 0; i < session.traces().size(); ++i)
          total += static_cast<double>(session.normal_nlr(i).size());
        const auto diff_text = session.diffnlr({5, 0}).render();
        const bool fig5 = diff_text.find("^16") != std::string::npos &&
                          diff_text.find("^7") != std::string::npos &&
                          diff_text.find("^9") != std::string::npos;
        table.add_row({std::to_string(k), std::to_string(reps), fold ? "on" : "off",
                       util::format_double(total / static_cast<double>(session.traces().size()), 1),
                       fig5 ? "yes" : "no"});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "shape check: K>=2 folds the exchange loop (5 items/trace) and preserves the Figure-5\n"
      "diff; K=1 cannot see the 2-call body. Known-body folding DISTORTS the diff (a single\n"
      "occurrence of the opposite phase gets wrapped into L^1 and breaks the L^7/L^9 split) —\n"
      "the reason it defaults to off (see NlrConfig).\n");
}

void linkage_ablation(const trace::TraceStore& normal, const trace::TraceStore& faulty) {
  bench::banner("A1.2 / linkage-method ablation (odd/even swapBug verdict)");
  util::TextTable table({"Linkage", "mean B-score", "consensus trace"});
  for (const auto method : core::all_linkages()) {
    core::SweepConfig sweep;
    sweep.filters = {core::FilterSpec::mpi_all()};
    sweep.pipeline.linkage = method;
    const auto ranking = core::sweep(normal, faulty, sweep);
    double total = 0.0;
    for (const auto& row : ranking.rows) total += row.bscore;
    table.add_row({std::string(core::linkage_name(method)),
                   util::format_double(total / static_cast<double>(ranking.rows.size())),
                   ranking.consensus_thread()});
  }
  std::printf("%s", table.render().c_str());
  std::printf("shape check: the verdict (trace 5.0) is robust across all seven linkage methods —\n"
              "the paper's fixed choice of ward is a convention, not a load-bearing decision.\n");
}

void attr_depth_ablation() {
  bench::banner("A1.3 / deep vs shallow single attributes (ILCS OmpNoCritical, noisy workload)");
  auto normal = bench::collect_ilcs({});
  auto faulty = bench::collect_ilcs({apps::FaultType::OmpNoCritical, 6, 4, -1});

  core::FilterSpec filter;
  filter.keep(core::Category::Memory).keep(core::Category::OmpCritical).keep_custom("^CPU_Exec$");
  const core::Session session(normal.store, faulty.store, filter, {});
  const auto idx = session.index_of({6, 4});

  util::TextTable table({"Mining", "suspicion rank of 6.4", "score(6.4)", "max score"});
  for (const bool deep : {false, true}) {
    const auto eval = core::evaluate(
        session, core::AttrConfig{core::AttrKind::Single, core::FreqMode::NoFreq, deep},
        core::Linkage::Ward);
    std::size_t rank = 1;
    for (std::size_t i = 0; i < eval.scores.size(); ++i)
      if (i != idx && eval.scores[i] > eval.scores[idx]) ++rank;
    table.add_row({deep ? "deep" : "shallow (literal Table V)", std::to_string(rank),
                   util::format_double(eval.scores[idx]),
                   util::format_double(*std::max_element(eval.scores.begin(), eval.scores.end()))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("shape check: deep mining keeps the culprit at/near the top despite the\n"
              "asynchronous run-to-run loop-segmentation churn.\n");
}

}  // namespace

int main() {
  auto normal = bench::collect_odd_even(16, {});
  auto swap_bug = bench::collect_odd_even(16, {apps::FaultType::SwapBug, 5, -1, 7});
  nlr_knob_ablation(normal.store, swap_bug.store);
  linkage_ablation(normal.store, swap_bug.store);
  attr_depth_ablation();
  return 0;
}
