// P6 — end-to-end sweep cost and the future-work-(1) parallel speedup:
// the full DiffTrace analysis (filter → NLR → attributes → JSM → clustering
// → B-score) over a 16-process odd/even pair, serial vs multi-threaded.
// NOTE: the speedup is bounded by the host's core count (a single-core box
// shows flat times); correctness (identical tables at any thread count) is
// asserted by OddEvenPipeline.ParallelSweepMatchesSerial.
//
// This bench has two modes:
//   perf_sweep [gbench flags]   google-benchmark timings (default)
//   perf_sweep --json[=PATH]    one instrumented pass per thread count,
//                               emitted as a run manifest (the BENCH_*.json
//                               format) — phases carry the wall/CPU numbers,
//                               counters the pipeline throughput.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

using namespace difftrace;

namespace {

struct StorePair {
  trace::TraceStore normal;
  trace::TraceStore faulty;
};

const StorePair& stores() {
  static const StorePair pair = [] {
    const auto collect = [](apps::FaultSpec fault) {
      apps::OddEvenConfig config;
      config.nranks = 16;
      config.elements_per_rank = 16;
      config.fault = fault;
      simmpi::WorldConfig world;
      world.nranks = 16;
      return apps::run_traced(world,
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); })
          .store;
    };
    return StorePair{collect({}), collect({apps::FaultType::SwapBug, 5, -1, 7})};
  }();
  return pair;
}

core::SweepConfig wide_sweep(std::size_t threads) {
  core::SweepConfig config;
  config.filters = {core::FilterSpec::mpi_all(),      core::FilterSpec::mpi_send_recv(),
                    core::FilterSpec::mpi_collectives(), core::FilterSpec::everything(),
                    core::FilterSpec::memory(),       core::FilterSpec::omp_all(),
                    core::FilterSpec::everything().drop_returns(false),
                    core::FilterSpec::mpi_all().drop_plt(false)};
  config.analysis_threads = threads;
  return config;
}

void BM_SweepThreads(benchmark::State& state) {
  const auto& pair = stores();
  const auto config = wide_sweep(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto table = core::sweep(pair.normal, pair.faulty, config);
    benchmark::DoNotOptimize(table);
  }
  state.counters["rows"] = static_cast<double>(config.filters.size() * 6);
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SessionBuild(benchmark::State& state) {
  const auto& pair = stores();
  for (auto _ : state) {
    core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_SessionBuild);

void BM_Evaluate(benchmark::State& state) {
  const auto& pair = stores();
  const core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
  for (auto _ : state) {
    auto eval = core::evaluate(session, {core::AttrKind::Double, core::FreqMode::Actual},
                               core::Linkage::Ward);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_Evaluate);

// --- manifest mode (--json) --------------------------------------------------

// One measured sweep per thread count, each under its own span, so the
// manifest's phase table is the speedup curve and its counters the pipeline
// throughput. This is the generator for BENCH_sweep.json.
int run_manifest_mode(const std::vector<std::string>& command, const std::string& json_path) {
  obs::MetricsRegistry::instance().reset();
  obs::PhaseTable::instance().reset();
  {
    obs::Span span_root("perf_sweep");
    const StorePair* pair = nullptr;
    {
      obs::Span span_collect("collect");
      pair = &stores();
    }
    for (const std::size_t threads : {1, 2, 4, 8}) {
      obs::Span span_sweep("sweep_t" + std::to_string(threads));
      auto table = core::sweep(pair->normal, pair->faulty, wide_sweep(threads));
      benchmark::DoNotOptimize(table);
    }
  }
  const auto manifest = obs::collect_manifest(command, {}, 0);
  if (json_path.empty()) {
    manifest.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "perf_sweep: cannot write '" << json_path << "'\n";
      return 1;
    }
    manifest.write_json(file);
    file << "\n";
    std::cerr << "[stats] manifest written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::string json_path;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_json)
    return run_manifest_mode({bench_argv.empty() ? "perf_sweep" : bench_argv[0], "--json"},
                             json_path);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
