// P6 — end-to-end sweep cost and the future-work-(1) parallel speedup:
// the full DiffTrace analysis (filter → NLR → attributes → JSM → clustering
// → B-score) over a 16-process odd/even pair, serial vs multi-threaded.
// NOTE: the speedup is bounded by the host's core count (a single-core box
// shows flat times); correctness (identical tables at any thread count) is
// asserted by OddEvenPipeline.ParallelSweepMatchesSerial.
#include <benchmark/benchmark.h>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

using namespace difftrace;

namespace {

struct StorePair {
  trace::TraceStore normal;
  trace::TraceStore faulty;
};

const StorePair& stores() {
  static const StorePair pair = [] {
    const auto collect = [](apps::FaultSpec fault) {
      apps::OddEvenConfig config;
      config.nranks = 16;
      config.elements_per_rank = 16;
      config.fault = fault;
      simmpi::WorldConfig world;
      world.nranks = 16;
      return apps::run_traced(world,
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); })
          .store;
    };
    return StorePair{collect({}), collect({apps::FaultType::SwapBug, 5, -1, 7})};
  }();
  return pair;
}

core::SweepConfig wide_sweep(std::size_t threads) {
  core::SweepConfig config;
  config.filters = {core::FilterSpec::mpi_all(),      core::FilterSpec::mpi_send_recv(),
                    core::FilterSpec::mpi_collectives(), core::FilterSpec::everything(),
                    core::FilterSpec::memory(),       core::FilterSpec::omp_all(),
                    core::FilterSpec::everything().drop_returns(false),
                    core::FilterSpec::mpi_all().drop_plt(false)};
  config.analysis_threads = threads;
  return config;
}

void BM_SweepThreads(benchmark::State& state) {
  const auto& pair = stores();
  const auto config = wide_sweep(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto table = core::sweep(pair.normal, pair.faulty, config);
    benchmark::DoNotOptimize(table);
  }
  state.counters["rows"] = static_cast<double>(config.filters.size() * 6);
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SessionBuild(benchmark::State& state) {
  const auto& pair = stores();
  for (auto _ : state) {
    core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_SessionBuild);

void BM_Evaluate(benchmark::State& state) {
  const auto& pair = stores();
  const core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
  for (auto _ : state) {
    auto eval = core::evaluate(session, {core::AttrKind::Double, core::FreqMode::Actual},
                               core::Linkage::Ward);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_Evaluate);

}  // namespace
