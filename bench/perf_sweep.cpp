// P6 — end-to-end sweep cost and the future-work-(1) parallel speedup:
// the full DiffTrace analysis (filter → NLR → attributes → JSM → clustering
// → B-score) over a 16-process odd/even pair, serial vs multi-threaded.
// NOTE: the speedup is bounded by the host's core count (a single-core box
// shows flat times); correctness (identical tables at any thread count) is
// asserted by OddEvenPipeline.ParallelSweepMatchesSerial.
//
// This bench has two modes:
//   perf_sweep [gbench flags]   google-benchmark timings (default)
//   perf_sweep --json[=PATH]    one instrumented pass per job count plus a
//                               cold/warm cache pair, emitted as a run
//                               manifest (the BENCH_*.json format) — phases
//                               sweep_j1/j2/j4/jhw and cache_cold/cache_warm
//                               carry the wall/CPU numbers, counters the
//                               pipeline throughput and cache hit/miss.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "sched/cache.hpp"
#include "sched/pool.hpp"

using namespace difftrace;

namespace {

struct StorePair {
  trace::TraceStore normal;
  trace::TraceStore faulty;
};

const StorePair& stores() {
  static const StorePair pair = [] {
    const auto collect = [](apps::FaultSpec fault) {
      apps::OddEvenConfig config;
      config.nranks = 16;
      config.elements_per_rank = 16;
      config.fault = fault;
      simmpi::WorldConfig world;
      world.nranks = 16;
      return apps::run_traced(world,
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); })
          .store;
    };
    return StorePair{collect({}), collect({apps::FaultType::SwapBug, 5, -1, 7})};
  }();
  return pair;
}

core::SweepConfig wide_sweep(std::size_t threads) {
  core::SweepConfig config;
  config.filters = {core::FilterSpec::mpi_all(),      core::FilterSpec::mpi_send_recv(),
                    core::FilterSpec::mpi_collectives(), core::FilterSpec::everything(),
                    core::FilterSpec::memory(),       core::FilterSpec::omp_all(),
                    core::FilterSpec::everything().drop_returns(false),
                    core::FilterSpec::mpi_all().drop_plt(false)};
  config.analysis_threads = threads;
  return config;
}

void BM_SweepThreads(benchmark::State& state) {
  const auto& pair = stores();
  const auto config = wide_sweep(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto table = core::sweep(pair.normal, pair.faulty, config);
    benchmark::DoNotOptimize(table);
  }
  state.counters["rows"] = static_cast<double>(config.filters.size() * 6);
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Scratch cache directory for the cache benchmarks / manifest mode.
struct BenchCacheDir {
  std::filesystem::path path;
  BenchCacheDir() {
    path = std::filesystem::temp_directory_path() /
           ("difftrace-perf-sweep-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~BenchCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void BM_SweepCacheCold(benchmark::State& state) {
  const auto& pair = stores();
  BenchCacheDir dir;
  sched::Cache cache(dir.path);
  auto config = wide_sweep(0);
  config.cache = &cache;
  for (auto _ : state) {
    state.PauseTiming();
    cache.clear();  // every iteration starts from an empty directory
    state.ResumeTiming();
    auto table = core::sweep(pair.normal, pair.faulty, config);
    benchmark::DoNotOptimize(table);
  }
  state.counters["misses"] = static_cast<double>(cache.misses());
}
BENCHMARK(BM_SweepCacheCold)->UseRealTime();

void BM_SweepCacheWarm(benchmark::State& state) {
  const auto& pair = stores();
  BenchCacheDir dir;
  sched::Cache cache(dir.path);
  auto config = wide_sweep(0);
  config.cache = &cache;
  // Prime once; every measured iteration replays against the warm cache.
  auto primed = core::sweep(pair.normal, pair.faulty, config);
  benchmark::DoNotOptimize(primed);
  for (auto _ : state) {
    auto table = core::sweep(pair.normal, pair.faulty, config);
    benchmark::DoNotOptimize(table);
  }
  state.counters["hits"] = static_cast<double>(cache.hits());
}
BENCHMARK(BM_SweepCacheWarm)->UseRealTime();

void BM_SessionBuild(benchmark::State& state) {
  const auto& pair = stores();
  for (auto _ : state) {
    core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_SessionBuild);

void BM_Evaluate(benchmark::State& state) {
  const auto& pair = stores();
  const core::Session session(pair.normal, pair.faulty, core::FilterSpec::everything(), {});
  for (auto _ : state) {
    auto eval = core::evaluate(session, {core::AttrKind::Double, core::FreqMode::Actual},
                               core::Linkage::Ward);
    benchmark::DoNotOptimize(eval);
  }
}
BENCHMARK(BM_Evaluate);

// --- manifest mode (--json) --------------------------------------------------

// One measured sweep per job count plus a cold/warm cache pair, each under
// its own span, so the manifest's phase table is the speedup curve and its
// counters the pipeline throughput. This is the generator for
// BENCH_sweep.json. Returns nonzero if any pass disagrees with the serial
// table — the bench doubles as a cheap end-to-end determinism check.
int run_manifest_mode(const std::vector<std::string>& command, const std::string& json_path,
                      const std::string& selftrace_path) {
  obs::MetricsRegistry::instance().reset();
  obs::PhaseTable::instance().reset();
  if (!selftrace_path.empty()) obs::SelfTrace::instance().start();
  BenchCacheDir cache_dir;
  std::string baseline;
  bool mismatch = false;
  {
    obs::Span span_root("perf_sweep");
    const StorePair* pair = nullptr;
    {
      obs::Span span_collect("collect");
      pair = &stores();
    }
    const auto check = [&](const core::RankingTable& table, const char* what) {
      const auto rendered = table.render();
      if (baseline.empty())
        baseline = rendered;
      else if (rendered != baseline) {
        std::cerr << "perf_sweep: " << what << " table differs from the jobs=1 baseline\n";
        mismatch = true;
      }
    };
    // Speedup curve: explicit 1/2/4 plus the host's own concurrency (only
    // when that is not already one of the explicit points).
    std::vector<std::pair<std::size_t, std::string>> passes = {
        {1, "sweep_j1"}, {2, "sweep_j2"}, {4, "sweep_j4"}};
    const auto hw = sched::hardware_jobs();
    if (hw != 1 && hw != 2 && hw != 4) passes.emplace_back(hw, "sweep_jhw");
    for (const auto& [jobs, name] : passes) {
      obs::Span span_sweep(name);
      check(core::sweep(pair->normal, pair->faulty, wide_sweep(jobs)), name.c_str());
    }
    // Cache pair: same sweep at hardware jobs, cold (filling) then warm.
    sched::Cache cache(cache_dir.path);
    auto cached = wide_sweep(0);
    cached.cache = &cache;
    {
      obs::Span span_cold("cache_cold");
      check(core::sweep(pair->normal, pair->faulty, cached), "cache_cold");
    }
    {
      obs::Span span_warm("cache_warm");
      check(core::sweep(pair->normal, pair->faulty, cached), "cache_warm");
    }
  }
  auto manifest = obs::collect_manifest(command, {}, mismatch ? 1 : 0);
  if (!selftrace_path.empty()) {
    const auto self_store = obs::SelfTrace::instance().stop();
    self_store.save(selftrace_path);
    std::cerr << "[self-trace] " << self_store.size() << " stream(s) written to "
              << selftrace_path << "\n";
    manifest.self_trace = selftrace_path;
  }
  manifest.jobs = sched::hardware_jobs();
  manifest.cache_dir = cache_dir.path.string();
  if (json_path.empty()) {
    manifest.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "perf_sweep: cannot write '" << json_path << "'\n";
      return 1;
    }
    manifest.write_json(file);
    file << "\n";
    std::cerr << "[stats] manifest written to " << json_path << "\n";
  }
  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::string json_path;
  std::string selftrace_path;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--self-trace") {
      selftrace_path = "perf_sweep.selftrace.dtrc";
    } else if (arg.rfind("--self-trace=", 0) == 0) {
      selftrace_path = arg.substr(13);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_json)
    return run_manifest_mode({bench_argv.empty() ? "perf_sweep" : bench_argv[0], "--json"},
                             json_path, selftrace_path);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
