// Resilient-ingestion overhead: v2 framed save/load against best-effort
// salvage, and strict decode against the bounded decode_prefix path — the
// checksummed container must not make healthy-path ingestion measurably
// slower, and salvage of a damaged archive must stay linear in file size.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "trace/chaos.hpp"
#include "trace/store.hpp"
#include "util/prng.hpp"
#include "util/varint.hpp"

using namespace difftrace;

namespace {

namespace fs = std::filesystem;

std::vector<compress::Symbol> loopy(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<compress::Symbol> out;
  out.reserve(n);
  while (out.size() < n) {
    const auto body_len = 1 + rng.below(5);
    const auto reps = 4 + rng.below(60);
    std::vector<compress::Symbol> body;
    for (std::size_t i = 0; i < body_len; ++i)
      body.push_back(static_cast<compress::Symbol>(rng.below(512)));
    for (std::size_t r = 0; r < reps && out.size() < n; ++r)
      for (const auto s : body) out.push_back(s);
  }
  return out;
}

trace::TraceStore make_store(std::size_t traces, std::size_t events_per_trace) {
  trace::TraceStore store;
  for (std::size_t i = 0; i < 600; ++i)
    store.registry().intern("fn" + std::to_string(i), trace::Image::Main);
  for (std::size_t t = 0; t < traces; ++t) {
    auto codec = compress::make_codec("parlot");
    for (const auto s : loopy(events_per_trace, t + 1)) codec.encoder->push(s % 1200);
    codec.encoder->flush();
    trace::TraceBlob blob;
    blob.codec_name = "parlot";
    blob.bytes = codec.encoder->bytes();
    blob.event_count = events_per_trace;
    store.add_blob({static_cast<int>(t), 0}, std::move(blob));
  }
  return store;
}

fs::path bench_path() { return fs::temp_directory_path() / "difftrace_perf_salvage.dtr"; }

void BM_SaveV2(benchmark::State& state) {
  const auto store = make_store(16, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) store.save(bench_path());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(BM_SaveV2)->Arg(10'000)->Arg(100'000);

void BM_LoadStrict(benchmark::State& state) {
  make_store(16, static_cast<std::size_t>(state.range(0))).save(bench_path());
  for (auto _ : state) {
    auto store = trace::TraceStore::load(bench_path());
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(BM_LoadStrict)->Arg(10'000)->Arg(100'000);

void BM_SalvageHealthy(benchmark::State& state) {
  make_store(16, static_cast<std::size_t>(state.range(0))).save(bench_path());
  for (auto _ : state) {
    auto result = trace::TraceStore::salvage(bench_path());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(BM_SalvageHealthy)->Arg(10'000)->Arg(100'000);

void BM_SalvageDamaged(benchmark::State& state) {
  make_store(16, static_cast<std::size_t>(state.range(0))).save(bench_path());
  const auto archive = trace::chaos_read_file(bench_path());
  const auto mutated = trace::chaos_random(archive, 7);
  trace::chaos_write_file(bench_path(), mutated.bytes);
  std::size_t recovered = 0;
  for (auto _ : state) {
    auto result = trace::TraceStore::salvage(bench_path());
    recovered = result.report.recovered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["recovered"] = static_cast<double>(recovered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(BM_SalvageDamaged)->Arg(10'000)->Arg(100'000);

void BM_DecodePrefixVsStrict(benchmark::State& state) {
  const auto input = loopy(static_cast<std::size_t>(state.range(0)), 9);
  auto codec = compress::make_codec("parlot");
  for (const auto s : input) codec.encoder->push(s);
  codec.encoder->flush();
  const auto bytes = codec.encoder->bytes();
  for (auto _ : state) {
    auto result = codec.decoder->decode_prefix(bytes, compress::kNoSymbolCap);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodePrefixVsStrict)->Arg(100'000)->Arg(1'000'000);

}  // namespace
