// E6 — Table VIII & Figure 7c (§IV-D): process 0 reduces the champion with
// MPI_MAX instead of MPI_MIN. The job terminates (silent semantic bug);
// MPI-filtered rows of the sweep converge on an outlier process and the
// diffNLR shows the changed champion-exchange (MPI_Bcast) loop frequency.
#include "exp_common.hpp"

using namespace difftrace;

int main() {
  bench::banner("E6 / Table VIII: MPI bug — wrong collective operation, injected to process 0");
  constexpr std::size_t kHardInstance = 100;  // see collect_ilcs
  auto normal = bench::collect_ilcs({}, instrument::CaptureLevel::MainImage, kHardInstance);
  auto faulty = bench::collect_ilcs({apps::FaultType::WrongCollectiveOp, 0, -1, -1},
                                    instrument::CaptureLevel::MainImage, kHardInstance);
  bench::note_report(faulty.report);

  // The "cust" component covers the ILCS user code, which includes the
  // champion-claim function — the trace artifact the wrong-op fault shifts.
  core::FilterSpec plt_cust;  // "plt.cust": calls incl. user code, no MPI restriction
  plt_cust.keep_custom("^CPU_|^MPI_|^GOMP_|^updateChampionBuffer$");
  core::FilterSpec mpi_cust = core::FilterSpec::mpi_all();
  mpi_cust.keep_custom("^CPU_Exec$|^updateChampionBuffer$");
  core::FilterSpec mpicol_cust = core::FilterSpec::mpi_collectives();
  mpicol_cust.keep_custom("^CPU_Exec$|^updateChampionBuffer$");

  core::SweepConfig sweep;
  sweep.filters = {plt_cust, mpi_cust, mpicol_cust};
  const auto table = core::sweep(normal.store, faulty.store, sweep);
  std::printf("%s", table.render().c_str());
  std::printf("\nconsensus suspicious process: %d (paper: MPI rows agreed on one process)\n",
              table.consensus_process());

  bench::banner("E6 / Figure 7c: diffNLR of the flagged process's master thread");
  const int flagged = table.consensus_process() >= 0 ? table.consensus_process() : 0;
  const core::Session session(normal.store, faulty.store, mpi_cust, {});
  std::printf("diffNLR(%d):\n%s", flagged, session.diffnlr({flagged, 0}).render().c_str());

  // Quantify the Bcast-loop change the paper describes.
  const auto count_bcasts = [&](const trace::TraceStore& store, int proc) {
    const auto tokens = core::FilterSpec::mpi_collectives().apply(store, {proc, 0});
    return std::count(tokens.begin(), tokens.end(), std::string("MPI_Bcast"));
  };
  std::printf("\nMPI_Bcast calls in process %d: normal=%ld faulty=%ld\n", flagged,
              count_bcasts(normal.store, flagged), count_bcasts(faulty.store, flagged));
  std::printf(
      "paper shape check: the champion-exchange (MPI_Bcast) loop changes under the fault —\n"
      "typically with MORE rounds in the buggy run, like the paper's Figure 7c. As in the\n"
      "paper, the sweep flags a process other than the injected one; the claim pattern below\n"
      "then reveals the mechanism (the faulty rank sees the MAX and claims every round).\n");

  // Root-cause evidence: the faulty rank sees the MAX champion, so
  // `local <= global` always holds and it claims ownership every round —
  // starving every other rank's claim.
  std::printf("\nchampion claims (updateChampionBuffer) per master:  rank:");
  for (int proc = 0; proc < 8; ++proc) std::printf(" %d", proc);
  std::printf("\n");
  for (const auto* label : {"normal", "faulty"}) {
    const auto& store = label[0] == 'n' ? normal.store : faulty.store;
    std::printf("  %-6s claims:", label);
    for (int proc = 0; proc < 8; ++proc) {
      core::FilterSpec f;
      f.keep_custom("^updateChampionBuffer$");
      std::printf(" %zu", f.apply(store, {proc, 0}).size());
    }
    std::printf("\n");
  }
  std::printf("shape check: in the faulty run only process 0 (the injected rank) ever claims\n");
  return 0;
}
