// Semantic-verifier throughput: `difftrace check` is an offline pass over
// whole archives, so its cost is measured in events/sec — context build
// (tolerant decode + stack walk + blocked classification) plus the three
// checkers over a synthetic job with realistic call nesting, matched p2p
// traffic, per-iteration collectives, and worker-thread lock activity.
// The engine benchmarks put the paper's asymptotic claim on the clock:
// the replay engine walks every expanded event, the summary engine
// composes per-loop-body effect summaries over the NLR program, so on
// long iterative traces the gap widens with the iteration count.
//
// Two modes, like perf_sweep:
//   perf_check [gbench flags]   google-benchmark timings (default)
//   perf_check --json[=PATH]    one instrumented pass per engine on a
//                               long-iterative job (phases check_replay /
//                               check_summary_cold / check_summary_warm /
//                               check_auto_j{1,2,8}) emitted as a run
//                               manifest — the generator for
//                               BENCH_check.json. Exits nonzero when any
//                               engine's report differs from replay's:
//                               the bench doubles as a parity check.
#include <benchmark/benchmark.h>

#include <stdlib.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/analyze.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"

using namespace difftrace;

namespace {

/// One rank per proc exchanging ring traffic and joining one allreduce per
/// iteration, plus one worker thread per proc taking a critical section —
/// roughly the op mix an ilcs/lulesh archive carries.
trace::TraceStore make_job(int nranks, std::size_t iterations) {
  trace::TraceStore store;
  const auto main_fn = store.registry().intern("main");
  const auto step = store.registry().intern("step");
  const auto send = store.registry().intern("MPI_Send", trace::Image::MpiLib);
  const auto recv = store.registry().intern("MPI_Recv", trace::Image::MpiLib);
  const auto allreduce = store.registry().intern("MPI_Allreduce", trace::Image::MpiLib);
  const auto crit = store.registry().intern("GOMP_critical_start", trace::Image::OmpLib);

  for (int rank = 0; rank < nranks; ++rank) {
    trace::TraceWriter writer({rank, 0}, "parlot");
    const int right = (rank + 1) % nranks;
    const int left = (rank + nranks - 1) % nranks;
    writer.record(trace::EventKind::Call, main_fn);
    for (std::size_t i = 0; i < iterations; ++i) {
      writer.record(trace::EventKind::Call, step);
      writer.record(trace::EventKind::Call, send);
      writer.annotate({.code = trace::OpCode::SendPost, .peer = right, .tag = 7, .count = 64});
      writer.record(trace::EventKind::Return, send);
      writer.record(trace::EventKind::Call, recv);
      writer.annotate({.code = trace::OpCode::RecvPost, .peer = left, .tag = 7});
      writer.record(trace::EventKind::Return, recv);
      writer.record(trace::EventKind::Call, allreduce);
      writer.annotate({.code = trace::OpCode::CollEnter,
                       .peer = 0,
                       .count = 1,
                       .coll = 3,
                       .dtype = 1,
                       .redop = 1,
                       .detail = "MPI_Allreduce"});
      writer.record(trace::EventKind::Return, allreduce);
      writer.record(trace::EventKind::Return, step);
    }
    writer.record(trace::EventKind::Return, main_fn);
    store.absorb(writer);

    trace::TraceWriter worker({rank, 1}, "parlot");
    worker.record(trace::EventKind::Call, main_fn);
    for (std::size_t i = 0; i < iterations; ++i) {
      worker.record(trace::EventKind::Call, crit);
      worker.annotate({.code = trace::OpCode::LockAcquire, .detail = "champion"});
      worker.annotate({.code = trace::OpCode::LockRelease, .detail = "champion"});
      worker.record(trace::EventKind::Return, crit);
    }
    worker.record(trace::EventKind::Return, main_fn);
    store.absorb(worker);
  }
  return store;
}

std::int64_t total_events(const trace::TraceStore& store) {
  return static_cast<std::int64_t>(store.stats().total_events);
}

/// Full `difftrace check`: context build + all three checkers.
void BM_CheckAll(benchmark::State& state) {
  const auto store = make_job(8, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto report = analyze::run_checks(store);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckAll)->Arg(1'000)->Arg(10'000);

/// Context build alone (decode + stack walk): the floor any checker pays.
void BM_CheckContextBuild(benchmark::State& state) {
  const auto store = make_job(8, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto ctx = analyze::CheckContext::build(store);
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckContextBuild)->Arg(1'000)->Arg(10'000);

/// Single-checker costs over a shared store (per-checker marginal price).
void BM_CheckOne(benchmark::State& state, const char* checker) {
  const auto store = make_job(8, 5'000);
  for (auto _ : state) {
    auto report = analyze::run_checks(store, {.checkers = {checker}});
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK_CAPTURE(BM_CheckOne, stream, "stream");
BENCHMARK_CAPTURE(BM_CheckOne, mpi, "mpi");
BENCHMARK_CAPTURE(BM_CheckOne, locks, "locks");

/// Scaling in rank count at fixed per-rank work (wait-for graph growth).
void BM_CheckRankScaling(benchmark::State& state) {
  const auto store = make_job(static_cast<int>(state.range(0)), 2'000);
  for (auto _ : state) {
    auto report = analyze::run_checks(store);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckRankScaling)->Arg(4)->Arg(16)->Arg(64);

/// Engine head-to-head on the same archive: the iteration count is the
/// x-axis of the paper's scaling argument. Replay cost grows with the
/// expanded event stream; summary cost grows with the NLR program.
void BM_CheckEngine(benchmark::State& state, analyze::CheckEngine engine) {
  const auto store = make_job(8, static_cast<std::size_t>(state.range(0)));
  analyze::CheckOptions options;
  options.engine = engine;
  for (auto _ : state) {
    auto report = analyze::run_checks(store, options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK_CAPTURE(BM_CheckEngine, replay, analyze::CheckEngine::Replay)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(50'000);
BENCHMARK_CAPTURE(BM_CheckEngine, summary, analyze::CheckEngine::Summary)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(50'000);
BENCHMARK_CAPTURE(BM_CheckEngine, auto_, analyze::CheckEngine::Auto)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(50'000);

// --- manifest mode (--json) --------------------------------------------------

/// Scratch summary-cache directory for the manifest mode.
struct BenchCacheDir {
  std::filesystem::path path;
  BenchCacheDir() {
    path = std::filesystem::temp_directory_path() /
           ("difftrace-perf-check-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~BenchCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// One instrumented pass per engine over a long-iterative job, plus the
/// DIFFTRACE_JOBS=1/2/8 invariance sweep, emitted as a run manifest (the
/// generator for BENCH_check.json). Every pass's rendered report must be
/// byte-identical to replay's — summary and auto are Exact on this
/// archive's bounded loops, so even summary is held to full parity here.
int run_manifest_mode(const std::vector<std::string>& command, const std::string& json_path,
                      const std::string& selftrace_path) {
  obs::MetricsRegistry::instance().reset();
  obs::PhaseTable::instance().reset();
  if (!selftrace_path.empty()) obs::SelfTrace::instance().start();
  BenchCacheDir cache_dir;
  bool mismatch = false;
  std::uint64_t replay_ns = 0;
  std::uint64_t summary_cold_ns = 0;
  std::uint64_t summary_warm_ns = 0;
  {
    obs::Span span_root("perf_check");
    trace::TraceStore store;
    {
      obs::Span span_make("synthesize");
      store = make_job(8, 20'000);
    }
    std::string baseline;
    const auto timed = [&](const std::string& name, const analyze::CheckOptions& options) {
      obs::Span span(name);
      const auto start = std::chrono::steady_clock::now();
      const auto report = analyze::run_checks(store, options);
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               start)
              .count());
      const auto rendered = report.render();
      if (baseline.empty()) {
        baseline = rendered;
      } else if (rendered != baseline) {
        std::cerr << "perf_check: " << name << " report differs from the replay baseline\n";
        mismatch = true;
      }
      return ns;
    };

    analyze::CheckOptions replay;
    replay.engine = analyze::CheckEngine::Replay;
    replay_ns = timed("check_replay", replay);

    analyze::CheckOptions summary;
    summary.engine = analyze::CheckEngine::Summary;
    summary.cache_dir = cache_dir.path.string();
    summary_cold_ns = timed("check_summary_cold", summary);
    summary_warm_ns = timed("check_summary_warm", summary);

    // Byte-identical diagnostics at any job count: the checker pipeline
    // must not let scheduler concurrency into its output.
    for (const char* jobs : {"1", "2", "8"}) {
      ::setenv("DIFFTRACE_JOBS", jobs, 1);
      analyze::CheckOptions auto_opts;
      auto_opts.engine = analyze::CheckEngine::Auto;
      timed(std::string("check_auto_j") + jobs, auto_opts);
    }
    ::unsetenv("DIFFTRACE_JOBS");
  }
  const auto speedup = [&](std::uint64_t ns) {
    return ns == 0 ? 0.0 : static_cast<double>(replay_ns) / static_cast<double>(ns);
  };
  std::cerr << "[perf_check] replay " << replay_ns / 1'000'000 << "ms, summary cold "
            << summary_cold_ns / 1'000'000 << "ms (" << speedup(summary_cold_ns) << "x), warm "
            << summary_warm_ns / 1'000'000 << "ms (" << speedup(summary_warm_ns) << "x)\n";

  auto manifest = obs::collect_manifest(command, {}, mismatch ? 1 : 0);
  if (!selftrace_path.empty()) {
    const auto self_store = obs::SelfTrace::instance().stop();
    self_store.save(selftrace_path);
    std::cerr << "[self-trace] " << self_store.size() << " stream(s) written to "
              << selftrace_path << "\n";
    manifest.self_trace = selftrace_path;
  }
  manifest.check_engine = "summary";
  manifest.cache_dir = cache_dir.path.string();
  if (json_path.empty()) {
    manifest.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "perf_check: cannot write '" << json_path << "'\n";
      return 1;
    }
    manifest.write_json(file);
    file << "\n";
    std::cerr << "[stats] manifest written to " << json_path << "\n";
  }
  return mismatch ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::string json_path;
  std::string selftrace_path;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--self-trace") {
      selftrace_path = "perf_check.selftrace.dtrc";
    } else if (arg.rfind("--self-trace=", 0) == 0) {
      selftrace_path = arg.substr(13);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_json)
    return run_manifest_mode({bench_argv.empty() ? "perf_check" : bench_argv[0], "--json"},
                             json_path, selftrace_path);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
