// Semantic-verifier throughput: `difftrace check` is an offline pass over
// whole archives, so its cost is measured in events/sec — context build
// (tolerant decode + stack walk + blocked classification) plus the three
// checkers over a synthetic job with realistic call nesting, matched p2p
// traffic, per-iteration collectives, and worker-thread lock activity.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"

using namespace difftrace;

namespace {

/// One rank per proc exchanging ring traffic and joining one allreduce per
/// iteration, plus one worker thread per proc taking a critical section —
/// roughly the op mix an ilcs/lulesh archive carries.
trace::TraceStore make_job(int nranks, std::size_t iterations) {
  trace::TraceStore store;
  const auto main_fn = store.registry().intern("main");
  const auto step = store.registry().intern("step");
  const auto send = store.registry().intern("MPI_Send", trace::Image::MpiLib);
  const auto recv = store.registry().intern("MPI_Recv", trace::Image::MpiLib);
  const auto allreduce = store.registry().intern("MPI_Allreduce", trace::Image::MpiLib);
  const auto crit = store.registry().intern("GOMP_critical_start", trace::Image::OmpLib);

  for (int rank = 0; rank < nranks; ++rank) {
    trace::TraceWriter writer({rank, 0}, "parlot");
    const int right = (rank + 1) % nranks;
    const int left = (rank + nranks - 1) % nranks;
    writer.record(trace::EventKind::Call, main_fn);
    for (std::size_t i = 0; i < iterations; ++i) {
      writer.record(trace::EventKind::Call, step);
      writer.record(trace::EventKind::Call, send);
      writer.annotate({.code = trace::OpCode::SendPost, .peer = right, .tag = 7, .count = 64});
      writer.record(trace::EventKind::Return, send);
      writer.record(trace::EventKind::Call, recv);
      writer.annotate({.code = trace::OpCode::RecvPost, .peer = left, .tag = 7});
      writer.record(trace::EventKind::Return, recv);
      writer.record(trace::EventKind::Call, allreduce);
      writer.annotate({.code = trace::OpCode::CollEnter,
                       .peer = 0,
                       .count = 1,
                       .coll = 3,
                       .dtype = 1,
                       .redop = 1,
                       .detail = "MPI_Allreduce"});
      writer.record(trace::EventKind::Return, allreduce);
      writer.record(trace::EventKind::Return, step);
    }
    writer.record(trace::EventKind::Return, main_fn);
    store.absorb(writer);

    trace::TraceWriter worker({rank, 1}, "parlot");
    worker.record(trace::EventKind::Call, main_fn);
    for (std::size_t i = 0; i < iterations; ++i) {
      worker.record(trace::EventKind::Call, crit);
      worker.annotate({.code = trace::OpCode::LockAcquire, .detail = "champion"});
      worker.annotate({.code = trace::OpCode::LockRelease, .detail = "champion"});
      worker.record(trace::EventKind::Return, crit);
    }
    worker.record(trace::EventKind::Return, main_fn);
    store.absorb(worker);
  }
  return store;
}

std::int64_t total_events(const trace::TraceStore& store) {
  return static_cast<std::int64_t>(store.stats().total_events);
}

/// Full `difftrace check`: context build + all three checkers.
void BM_CheckAll(benchmark::State& state) {
  const auto store = make_job(8, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto report = analyze::run_checks(store);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckAll)->Arg(1'000)->Arg(10'000);

/// Context build alone (decode + stack walk): the floor any checker pays.
void BM_CheckContextBuild(benchmark::State& state) {
  const auto store = make_job(8, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto ctx = analyze::CheckContext::build(store);
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckContextBuild)->Arg(1'000)->Arg(10'000);

/// Single-checker costs over a shared store (per-checker marginal price).
void BM_CheckOne(benchmark::State& state, const char* checker) {
  const auto store = make_job(8, 5'000);
  for (auto _ : state) {
    auto report = analyze::run_checks(store, {.checkers = {checker}});
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK_CAPTURE(BM_CheckOne, stream, "stream");
BENCHMARK_CAPTURE(BM_CheckOne, mpi, "mpi");
BENCHMARK_CAPTURE(BM_CheckOne, locks, "locks");

/// Scaling in rank count at fixed per-rank work (wait-for graph growth).
void BM_CheckRankScaling(benchmark::State& state) {
  const auto store = make_job(static_cast<int>(state.range(0)), 2'000);
  for (auto _ : state) {
    auto report = analyze::run_checks(store);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * total_events(store));
}
BENCHMARK(BM_CheckRankScaling)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
