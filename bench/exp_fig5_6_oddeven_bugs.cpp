// E3 — Figures 5 & 6 (§II-G): swapBug and dlBug in rank 5 after iteration 7
// of a 16-process odd/even sort. The suspicion ranking must single out
// trace 5, and the diffNLRs must show the paper's two signatures:
//   swapBug: L1^16  vs  L1^7 · L0^9, both runs reach MPI_Finalize;
//   dlBug:   the faulty trace never reaches MPI_Finalize and ends stuck.
#include "exp_common.hpp"

using namespace difftrace;

namespace {

void show(const trace::TraceStore& normal, const bench::Collected& faulty_run, const char* name) {
  bench::banner(std::string("E3 / ") + name + " in rank 5 after iteration 7 (16 processes)");
  bench::note_report(faulty_run.report);

  core::SweepConfig sweep;
  sweep.filters = {core::FilterSpec::mpi_all(), core::FilterSpec::mpi_send_recv()};
  const auto table = core::sweep(normal, faulty_run.store, sweep);
  std::printf("%s", table.render().c_str());
  std::printf("consensus suspicious trace: %s   (paper: trace 5)\n\n",
              table.consensus_thread().c_str());

  const core::Session session(normal, faulty_run.store, core::FilterSpec::mpi_all(), {});

  // §II-D: NLR as a per-thread progress measure — for the deadlock case the
  // cascade truncates everyone, and the *least progressed* trace names the
  // root cause even when the JSM ranking spreads wide.
  const auto least = session.least_progressed();
  std::printf("least-progressed trace: %s (progress ratio %.2f)   (paper: trace 5)\n\n",
              session.traces()[least].label().c_str(), session.progress_ratio(least));

  const auto diff = session.diffnlr({5, 0});
  std::printf("diffNLR(5):\n%s", diff.render().c_str());
  std::printf("\ndiffNLR(5), figure layout:\n%s", diff.render_side_by_side().c_str());
}

}  // namespace

int main() {
  auto normal = bench::collect_odd_even(16, {});
  auto swap_bug = bench::collect_odd_even(16, {apps::FaultType::SwapBug, 5, -1, 7});
  auto dl_bug = bench::collect_odd_even(16, {apps::FaultType::DlBug, 5, -1, 7});

  show(normal.store, swap_bug, "Figure 5: swapBug");
  show(normal.store, dl_bug, "Figure 6: dlBug");
  return 0;
}
