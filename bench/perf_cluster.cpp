// P4 — hierarchical clustering and B-score cost across linkage methods and
// trace counts (the O(n³) Lance-Williams loop is negligible at the paper's
// 8-40 traces; this quantifies headroom).
#include <benchmark/benchmark.h>

#include "core/bscore.hpp"
#include "core/hclust.hpp"
#include "util/prng.hpp"

using namespace difftrace;

namespace {

util::Matrix random_dist(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::Matrix d = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) d(i, j) = d(j, i) = 0.05 + rng.uniform();
  return d;
}

void BM_LinkageWard(benchmark::State& state) {
  const auto d = random_dist(static_cast<std::size_t>(state.range(0)), 21);
  for (auto _ : state) {
    auto z = core::linkage(d, core::Linkage::Ward);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_LinkageWard)->Arg(8)->Arg(40)->Arg(128)->Arg(256);

void BM_LinkageMethods(benchmark::State& state) {
  const auto method = static_cast<core::Linkage>(state.range(0));
  const auto d = random_dist(64, 22);
  for (auto _ : state) {
    auto z = core::linkage(d, method);
    benchmark::DoNotOptimize(z);
  }
  state.SetLabel(std::string(core::linkage_name(method)));
}
BENCHMARK(BM_LinkageMethods)->DenseRange(0, 6);

void BM_Bscore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::linkage(random_dist(n, 23), core::Linkage::Ward);
  const auto b = core::linkage(random_dist(n, 24), core::Linkage::Ward);
  for (auto _ : state) {
    auto s = core::bscore(a, b, n);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Bscore)->Arg(8)->Arg(40)->Arg(128);

}  // namespace
