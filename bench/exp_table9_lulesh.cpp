// E7 — §V statistics and Table IX: the LULESH proxy at 8 processes × 4 OMP
// threads.
//
// Part 1 reproduces the §V trace statistics: distinct functions per
// process, compressed bytes per thread, decompressed calls per process, and
// the NLR reduction factor for K=10 vs K=50 (the paper reports 1.92 and
// 16.74 on real LULESH).
//
// Part 2 injects the §V fault (rank 2 never calls LagrangeLeapFrog) and
// prints the Table IX ranking — expected shape: the hang truncates every
// rank, so all process IDs appear across rows.
#include <set>

#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace difftrace;

int main() {
  bench::banner("E7 / §V statistics: LULESH proxy, 8 procs x 4 threads");
  auto normal = bench::collect_lulesh({}, /*cycles=*/6, /*elements=*/48);
  bench::note_report(normal.report);
  const auto& store = normal.store;

  // Distinct functions observed per process.
  std::vector<double> distinct_per_proc;
  for (int proc = 0; proc < 8; ++proc) {
    std::set<trace::FunctionId> fids;
    for (const auto& key : store.keys()) {
      if (key.proc != proc) continue;
      for (const auto& event : store.decode(key)) fids.insert(event.fid);
    }
    distinct_per_proc.push_back(static_cast<double>(fids.size()));
  }
  const auto distinct = util::summarize(distinct_per_proc);

  // Compressed size per thread / decompressed calls per process.
  std::vector<double> bytes_per_thread;
  std::vector<double> calls_per_proc(8, 0.0);
  for (const auto& key : store.keys()) {
    const auto& blob = store.blob(key);
    bytes_per_thread.push_back(static_cast<double>(blob.bytes.size()));
    calls_per_proc[static_cast<std::size_t>(key.proc)] += static_cast<double>(blob.event_count);
  }
  const auto bytes = util::summarize(bytes_per_thread);
  const auto calls = util::summarize(calls_per_proc);

  util::TextTable stats({"Metric", "Paper (real LULESH2)", "This proxy"});
  stats.add_row({"distinct functions / process", "410",
                 util::format_double(distinct.mean, 1)});
  stats.add_row({"compressed trace / thread (bytes)", "< 2867 (2.8 KB)",
                 util::format_double(bytes.mean, 1)});
  stats.add_row({"decompressed calls / process", "421503",
                 util::format_double(calls.mean, 1)});

  // NLR reduction factors over the everything-filtered per-process master
  // traces. The paper compares K=10 vs K=50 on real LULESH (1.92 / 16.74):
  // larger K folds the whole time-step loop. Our proxy's cycle body is 59
  // NLR entries (3-D LULESH has more inner structure below K=50), so the
  // same knee appears between K=50 and K=80 — K=80 is reported to show it.
  for (const std::size_t k : {std::size_t{10}, std::size_t{50}, std::size_t{80}}) {
    std::vector<double> factors;
    for (int proc = 0; proc < 8; ++proc) {
      const auto tokens = core::FilterSpec::everything().apply(store, {proc, 0});
      core::TokenTable token_table;
      core::LoopTable loops;
      const auto program =
          core::build_nlr(token_table.intern_all(tokens), loops, core::NlrConfig{.k = k});
      if (!program.empty())
        factors.push_back(static_cast<double>(tokens.size()) / static_cast<double>(program.size()));
    }
    const auto f = util::summarize(factors);
    const char* paper = k == 10 ? "1.92" : (k == 50 ? "16.74" : "(n/a; knee shifted)");
    stats.add_row({"NLR reduction factor (K=" + std::to_string(k) + ")", paper,
                   util::format_double(f.mean, 2)});
  }
  std::printf("%s", stats.render().c_str());
  std::printf("\noverall compression ratio (raw 4B symbols vs stored): %.1fx\n",
              store.stats().compression_ratio);

  bench::banner("E7 / Table IX: fault — process 2 never invokes LagrangeLeapFrog");
  auto faulty = bench::collect_lulesh({apps::FaultType::SkipLagrangeLeapFrog, 2, -1, -1},
                                      /*cycles=*/6, /*elements=*/48);
  bench::note_report(faulty.report);

  core::FilterSpec lagrange;
  lagrange.keep(core::Category::MpiAll).keep_custom("^Lagrange|^Calc|^Comm[SMR]");
  core::SweepConfig sweep;
  sweep.filters = {core::FilterSpec::mpi_all(), lagrange, core::FilterSpec::everything()};
  const auto table = core::sweep(normal.store, faulty.store, sweep);
  std::printf("%s", table.render().c_str());

  std::set<int> all_flagged;
  for (const auto& row : table.rows)
    for (const auto p : row.top_processes) all_flagged.insert(p);
  std::printf("\nprocesses flagged across rows: %zu of 8 (paper: all IDs appear)\n",
              all_flagged.size());

  const core::Session session(normal.store, faulty.store, lagrange, {});
  std::printf("\ndiffNLR(2.0) — the faulty rank's missing work:\n%s",
              session.diffnlr({2, 0}).render().c_str());
  return 0;
}
