// E4 — Table VI & Figure 7a (§IV-B): ILCS-TSP, 8 processes × 4 worker
// threads; the critical section protecting the champion memcpy is omitted
// in worker 4 of process 6. The filter/attribute sweep must flag trace 6.4.
#include "exp_common.hpp"

using namespace difftrace;

int main() {
  bench::banner("E4 / Table VI: OpenMP bug — unprotected shared memory access by thread 4 of process 6");
  auto normal = bench::collect_ilcs({});
  auto faulty = bench::collect_ilcs({apps::FaultType::OmpNoCritical, 6, 4, -1});
  bench::note_report(faulty.report);

  // The Table VI filter grid: memory + critical-section + custom user code,
  // in the paper's "11.*" (drop returns) and "01.*" (keep returns) variants.
  core::FilterSpec mem_cust;
  mem_cust.keep(core::Category::Memory).keep_custom("^CPU_Exec$");
  core::FilterSpec mem_ompcrit_cust;
  mem_ompcrit_cust.keep(core::Category::Memory)
      .keep(core::Category::OmpCritical)
      .keep_custom("^CPU_Exec$");
  auto mem_cust_rets = mem_cust;
  mem_cust_rets.drop_returns(false);
  auto mem_ompcrit_cust_rets = mem_ompcrit_cust;
  mem_ompcrit_cust_rets.drop_returns(false);

  core::SweepConfig sweep;
  sweep.filters = {mem_cust, mem_ompcrit_cust, mem_cust_rets, mem_ompcrit_cust_rets};
  const auto table = core::sweep(normal.store, faulty.store, sweep);
  std::printf("%s", table.render().c_str());
  std::printf("\nconsensus suspicious trace: %s   (paper Table VI: 6.4)\n",
              table.consensus_thread().c_str());
  std::printf("consensus suspicious process: %d\n\n", table.consensus_process());

  bench::banner("E4 / Figure 7a: diffNLR(6.4)");
  const core::Session session(normal.store, faulty.store, mem_ompcrit_cust, {});
  std::printf("%s", session.diffnlr({6, 4}).render().c_str());
  std::printf("\npaper shape check: the faulty side lacks the GOMP_critical_start/end bracket\n");
  return 0;
}
