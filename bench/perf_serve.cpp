// Resident-service speedup: what `difftrace serve` buys over the cold CLI.
// A cold `rank` pays archive decode + the full sweep on every invocation;
// a warm daemon answers from pinned decoded stores and its resident
// artifact cache, paying only cache replay + render. The bench holds the
// two answers byte-identical and puts the speedup on the clock.
//
// Two modes, like perf_sweep / perf_check:
//   perf_serve [gbench flags]   google-benchmark timings (default)
//   perf_serve --json[=PATH]    one instrumented ingest + cold/warm rank
//                               pass emitted as a run manifest (phases
//                               serve_ingest / rank_cold / rank_warmup /
//                               rank_warm) — the generator for
//                               BENCH_serve.json. Exits nonzero when the
//                               warm answer differs from the cold CLI's
//                               or the warm speedup falls under 5x: the
//                               bench doubles as the parity-and-payoff
//                               gate for the serve subsystem.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "cli/args.hpp"
#include "cli/load.hpp"
#include "cli/ops.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

using namespace difftrace;

namespace {

struct StorePair {
  trace::TraceStore normal;
  trace::TraceStore faulty;
};

StorePair make_pair() {
  const auto collect = [](apps::FaultSpec fault) {
    apps::OddEvenConfig config;
    config.nranks = 32;
    config.elements_per_rank = 2048;
    config.fault = fault;
    simmpi::WorldConfig world;
    world.nranks = 32;
    return apps::run_traced(world,
                            [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); })
        .store;
  };
  return {collect({}), collect({apps::FaultType::SwapBug, 5, -1, 7})};
}

/// A wide sweep (every stock filter): the interactive shape serve exists
/// for, and enough per-cell work that cold cost is decode + real analysis.
const std::vector<std::string>& rank_opts() {
  static const std::vector<std::string> opts = {"--filters=mpiall,mpisr,mpicol,all,mem,omp"};
  return opts;
}

/// The same adapter wiring cli/serve_cmd.cpp installs: the daemon answers
/// with the cold CLI's own command bodies, so the bench exercises the real
/// parity contract, not a stand-in.
serve::QueryOps cli_ops() {
  serve::QueryOps ops;
  ops.load_archive = [](const std::string& path, std::ostream& chatter) {
    auto loaded = cli::load_tolerant(path, chatter);
    return serve::LoadedArchive{std::move(loaded.store), loaded.salvaged};
  };
  ops.rank = [](const trace::TraceStore& normal, const trace::TraceStore& faulty,
                const std::vector<std::string>& opts, sched::Cache* cache, std::ostream& out,
                std::ostream& chatter) {
    return cli::rank_stores(normal, faulty, cli::Args(opts), cache, out, chatter);
  };
  ops.check = [](const trace::TraceStore& store, const std::string& label,
                 const std::vector<std::string>& opts, const std::string& default_cache_dir,
                 std::ostream& out, std::ostream& chatter) {
    return cli::check_store(store, label, cli::Args(opts), default_cache_dir, out, chatter);
  };
  ops.make_session = [](const trace::TraceStore& normal, const trace::TraceStore& faulty,
                        const std::vector<std::string>& opts) {
    return cli::make_session(normal, faulty, cli::Args(opts));
  };
  ops.diff = [](const core::Session& session, const std::string& trace,
                const std::vector<std::string>& opts, std::ostream& out) {
    return cli::render_diffnlr(session, trace, cli::Args(opts), out);
  };
  return ops;
}

/// Scratch directory for archives + the daemon store.
struct BenchDir {
  std::filesystem::path path;
  BenchDir() {
    path = std::filesystem::temp_directory_path() /
           ("difftrace-perf-serve-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

serve::Request rank_request(const char* id) {
  serve::Request req;
  req.op = "rank";
  req.request_id = id;
  req.normal = "normal";
  req.faulty = "faulty";
  req.opts = rank_opts();
  return req;
}

// --- google-benchmark mode ---------------------------------------------------

void BM_ProtocolRoundTrip(benchmark::State& state) {
  serve::Response resp;
  resp.request_id = "q1";
  resp.op = "rank";
  resp.command = {"rank", "normal", "faulty", "--filters=mpiall,mpisr"};
  resp.output = std::string(4096, 'x');
  resp.chatter = "[degraded] trace 5.0: tail lost\n";
  for (auto _ : state) {
    std::ostringstream framed;
    serve::write_response(framed, resp);
    auto back = serve::parse_response(framed.str());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_WarmRank(benchmark::State& state) {
  BenchDir dir;
  const auto pair = make_pair();
  pair.normal.save((dir.path / "normal.dtrc").string());
  pair.faulty.save((dir.path / "faulty.dtrc").string());

  std::ostringstream log;
  serve::Service service({.store_root = dir.path / "store", .hot_capacity = 8}, cli_ops(), log);
  for (const char* name : {"normal", "faulty"}) {
    serve::Request ingest;
    ingest.op = "ingest";
    ingest.request_id = name;
    ingest.path = (dir.path / (std::string(name) + ".dtrc")).string();
    ingest.name = name;
    if (service.handle(ingest).status != "ok") {
      state.SkipWithError("ingest failed");
      return;
    }
  }
  (void)service.handle(rank_request("warmup"));
  for (auto _ : state) {
    auto resp = service.handle(rank_request("timed"));
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_WarmRank)->Unit(benchmark::kMillisecond);

// --- manifest mode (--json) --------------------------------------------------

std::uint64_t elapsed_ns(const std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

/// One instrumented cold-vs-warm pass: ingest the pair into a fresh service,
/// run the cold CLI path (tolerant load + rank, no cache), then a warm-up
/// and a timed warm query. Emits a run manifest; nonzero exit on an answer
/// mismatch or a warm speedup under the gate.
int run_manifest_mode(const std::vector<std::string>& command, const std::string& json_path,
                      const std::string& selftrace_path) {
  constexpr double kMinSpeedup = 5.0;
  obs::MetricsRegistry::instance().reset();
  obs::PhaseTable::instance().reset();
  if (!selftrace_path.empty()) obs::SelfTrace::instance().start();

  BenchDir dir;
  bool failed = false;
  std::uint64_t cold_ns = 0;
  std::uint64_t warm_ns = 0;
  {
    obs::Span span_root("perf_serve");
    std::string normal_path;
    std::string faulty_path;
    {
      obs::Span span_make("synthesize");
      const auto pair = make_pair();
      normal_path = (dir.path / "normal.dtrc").string();
      faulty_path = (dir.path / "faulty.dtrc").string();
      pair.normal.save(normal_path);
      pair.faulty.save(faulty_path);
    }

    std::ostringstream log;
    serve::Service service({.store_root = dir.path / "store", .hot_capacity = 8}, cli_ops(),
                           log);
    {
      obs::Span span_ingest("serve_ingest");
      for (const auto& [name, path] :
           {std::pair<std::string, std::string>{"normal", normal_path}, {"faulty", faulty_path}}) {
        serve::Request ingest;
        ingest.op = "ingest";
        ingest.request_id = name;
        ingest.path = path;
        ingest.name = name;
        const auto resp = service.handle(ingest);
        if (resp.status != "ok") {
          std::cerr << "perf_serve: ingest " << name << " failed: " << resp.error << "\n";
          failed = true;
        }
      }
    }

    // Cold truth: exactly what `difftrace rank normal.dtrc faulty.dtrc`
    // runs — tolerant load of both archives plus the sweep, no cache.
    std::string cold_output;
    {
      obs::Span span_cold("rank_cold");
      const auto start = std::chrono::steady_clock::now();
      std::ostringstream out, chatter;
      auto normal = cli::load_tolerant(normal_path, chatter);
      auto faulty = cli::load_tolerant(faulty_path, chatter);
      if (cli::rank_stores(normal.store, faulty.store, cli::Args(rank_opts()), nullptr, out,
                           chatter) != 0) {
        std::cerr << "perf_serve: cold rank failed\n";
        failed = true;
      }
      cold_ns = elapsed_ns(start);
      cold_output = out.str();
    }

    {
      obs::Span span_warmup("rank_warmup");
      const auto resp = service.handle(rank_request("warmup"));
      if (resp.status != "ok") {
        std::cerr << "perf_serve: warm-up rank failed: " << resp.error << "\n";
        failed = true;
      }
    }
    {
      obs::Span span_warm("rank_warm");
      const auto start = std::chrono::steady_clock::now();
      const auto resp = service.handle(rank_request("timed"));
      warm_ns = elapsed_ns(start);
      if (resp.status != "ok") {
        std::cerr << "perf_serve: warm rank failed: " << resp.error << "\n";
        failed = true;
      } else if (resp.output != cold_output) {
        std::cerr << "perf_serve: warm answer differs from the cold CLI's\n";
        failed = true;
      }
    }
  }

  const double speedup =
      warm_ns == 0 ? 0.0 : static_cast<double>(cold_ns) / static_cast<double>(warm_ns);
  std::cerr << "[perf_serve] cold " << cold_ns / 1'000'000 << "ms, warm " << warm_ns / 1'000'000
            << "ms (" << speedup << "x)\n";
  if (!failed && speedup < kMinSpeedup) {
    std::cerr << "perf_serve: warm speedup " << speedup << "x under the " << kMinSpeedup
              << "x gate\n";
    failed = true;
  }

  auto manifest = obs::collect_manifest(command, {}, failed ? 1 : 0);
  if (!selftrace_path.empty()) {
    const auto self_store = obs::SelfTrace::instance().stop();
    self_store.save(selftrace_path);
    std::cerr << "[self-trace] " << self_store.size() << " stream(s) written to "
              << selftrace_path << "\n";
    manifest.self_trace = selftrace_path;
  }
  if (json_path.empty()) {
    manifest.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "perf_serve: cannot write '" << json_path << "'\n";
      return 1;
    }
    manifest.write_json(file);
    file << "\n";
    std::cerr << "[stats] manifest written to " << json_path << "\n";
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  std::string json_path;
  std::string selftrace_path;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg == "--self-trace") {
      selftrace_path = "perf_serve.selftrace.dtrc";
    } else if (arg.rfind("--self-trace=", 0) == 0) {
      selftrace_path = arg.substr(13);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_json)
    return run_manifest_mode({bench_argv.empty() ? "perf_serve" : bench_argv[0], "--json"},
                             json_path, selftrace_path);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
