// E5 — Table VII & Figure 7b (§IV-C): process 2 calls MPI_Allreduce with a
// wrong size, deadlocking the whole job early. Expected shape: the ranking
// marks most processes as suspicious (not helpful on its own, as the paper
// notes), but diffNLR of any process shows the common prefix up to the
// Allreduce and the missing MPI_Finalize — the two debugging hints.
#include "exp_common.hpp"

using namespace difftrace;

int main() {
  bench::banner("E5 / Table VII: MPI bug — wrong collective size in process 2");
  auto normal = bench::collect_ilcs({});
  auto faulty = bench::collect_ilcs({apps::FaultType::WrongCollectiveSize, 2, -1, -1});
  bench::note_report(faulty.report);

  core::FilterSpec mpi_cust = core::FilterSpec::mpi_all();
  mpi_cust.keep_custom("^CPU_Exec$");
  core::FilterSpec mpicol_cust = core::FilterSpec::mpi_collectives();
  mpicol_cust.keep_custom("^CPU_Exec$");

  core::SweepConfig sweep;
  sweep.filters = {mpi_cust, mpicol_cust};
  const auto table = core::sweep(normal.store, faulty.store, sweep);
  std::printf("%s", table.render().c_str());

  std::size_t widest_row = 0;
  for (const auto& row : table.rows) widest_row = std::max(widest_row, row.top_processes.size());
  std::printf("\nbroadest row flags %zu of 8 processes (paper: 6 of 8 — \"almost all\")\n",
              widest_row);

  // §II-A single-run mode: no baseline needed — a truncation fault is
  // visible in JSM_faulty alone (dissimilarity of each trace to the rest).
  bench::banner("E5 / single-run outlier analysis of the faulty run (JSM_faulty only)");
  const auto single = core::evaluate_single_run(faulty.store, mpi_cust,
                                                {core::AttrKind::Single, core::FreqMode::Actual});
  std::printf("per-trace outlier scores (1 - mean similarity):\n");
  for (std::size_t i = 0; i < single.traces.size(); ++i) {
    if (single.traces[i].thread != 0) continue;  // masters carry the MPI story
    std::printf("  %-4s %.3f\n", single.traces[i].label().c_str(), single.outlier_scores[i]);
  }
  std::vector<std::string> labels;
  for (const auto& key : single.traces) labels.push_back(key.label());
  std::printf("faulty-run dendrogram (ward):\n%s",
              core::render_dendrogram(single.dendrogram, single.traces.size(), labels).c_str());

  bench::banner("E5 / Figure 7b: diffNLR(4) — picked arbitrarily, like the paper");
  const core::Session session(normal.store, faulty.store, mpi_cust, {});
  std::printf("%s", session.diffnlr({4, 0}).render().c_str());
  std::printf(
      "\npaper shape check: identical prefix through MPI_Allreduce; the buggy\n"
      "trace's last entry is a collective call and MPI_Finalize is normal-only\n");
  return 0;
}
