// P5 — streaming codec throughput and ratio (the ParLOT practicality
// claim: compression must keep up with the traced application).
#include <benchmark/benchmark.h>

#include "compress/codec.hpp"
#include "util/prng.hpp"

using namespace difftrace;

namespace {

std::vector<compress::Symbol> loopy(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<compress::Symbol> out;
  out.reserve(n);
  while (out.size() < n) {
    const auto body_len = 1 + rng.below(5);
    const auto reps = 4 + rng.below(60);
    std::vector<compress::Symbol> body;
    for (std::size_t i = 0; i < body_len; ++i)
      body.push_back(static_cast<compress::Symbol>(rng.below(512)));
    for (std::size_t r = 0; r < reps && out.size() < n; ++r)
      for (const auto s : body) out.push_back(s);
  }
  return out;
}

void encode_bench(benchmark::State& state, const char* codec_name) {
  const auto input = loopy(static_cast<std::size_t>(state.range(0)), 31);
  double ratio = 0.0;
  for (auto _ : state) {
    auto codec = compress::make_codec(codec_name);
    for (const auto s : input) codec.encoder->push(s);
    codec.encoder->flush();
    ratio = static_cast<double>(input.size() * sizeof(compress::Symbol)) /
            static_cast<double>(codec.encoder->bytes().size());
    benchmark::DoNotOptimize(codec.encoder->bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
  state.counters["ratio"] = ratio;
}

void BM_EncodeParlot(benchmark::State& state) { encode_bench(state, "parlot"); }
void BM_EncodeLz78(benchmark::State& state) { encode_bench(state, "lz78"); }
void BM_EncodeNull(benchmark::State& state) { encode_bench(state, "null"); }
BENCHMARK(BM_EncodeParlot)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_EncodeLz78)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_EncodeNull)->Arg(100'000)->Arg(1'000'000);

void BM_DecodeParlot(benchmark::State& state) {
  const auto input = loopy(static_cast<std::size_t>(state.range(0)), 33);
  auto codec = compress::make_codec("parlot");
  for (const auto s : input) codec.encoder->push(s);
  codec.encoder->flush();
  const auto bytes = codec.encoder->bytes();
  for (auto _ : state) {
    auto symbols = codec.decoder->decode(bytes);
    benchmark::DoNotOptimize(symbols);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeParlot)->Arg(100'000)->Arg(1'000'000);

}  // namespace
