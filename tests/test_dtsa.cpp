// Unit tests for the dtsa static analyzer: lexer token/edge cases, per-file
// indexing (functions, sites, locks, directives), call-graph resolution, and
// end-to-end rule runs over in-memory sources. The fixture-level pins live in
// tools/dtsa/dtsa_selftest.py; these tests cover the layers underneath.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dtsa/callgraph.hpp"
#include "dtsa/index.hpp"
#include "dtsa/lexer.hpp"
#include "dtsa/rules.hpp"

namespace dtsa = difftrace::dtsa;

namespace {

std::vector<std::string> identifiers(const dtsa::LexResult& lexed) {
  std::vector<std::string> out;
  for (const auto& t : lexed.tokens)
    if (t.kind == dtsa::TokKind::kIdentifier) out.push_back(t.text);
  return out;
}

const dtsa::FunctionInfo* find_fn(const dtsa::FileIndex& fi, std::string_view qualified) {
  for (const auto& fn : fi.functions)
    if (fn.qualified == qualified) return &fn;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(DtsaLexer, RawStringPayloadNeverTokenizes) {
  const auto lexed = dtsa::lex(R"src(
const char* s = R"(std::cout << "hidden"; fopen("x", "r");)";
)src");
  const auto ids = identifiers(lexed);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "cout"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "fopen"), 0);
}

TEST(DtsaLexer, RawStringCustomDelimiterSpansShortTerminator) {
  // The payload contains `)"`; only `)dt"` ends the literal.
  const auto lexed = dtsa::lex("const char* s = R\"dt(one )\" two)dt\"; int after = 1;");
  const auto ids = identifiers(lexed);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "two"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "after"), 1);
}

TEST(DtsaLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const auto lexed = dtsa::lex("int a = 1'000'000; int b = 2;");
  const auto ids = identifiers(lexed);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "b"), 1);
}

TEST(DtsaLexer, PreprocessorContinuationStaysOneDirective) {
  const auto lexed = dtsa::lex("#define M(x) \\\n  fopen(x, \"r\")\nint live = 0;\n");
  const auto ids = identifiers(lexed);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "fopen"), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "live"), 1);
  // Line numbers after the continuation stay correct.
  for (const auto& t : lexed.tokens)
    if (t.text == "live") EXPECT_EQ(t.line, 3u);
}

TEST(DtsaLexer, NolintDirectiveParsesRuleAndLine) {
  const auto lexed = dtsa::lex("int x = 0;  // NOLINT-DT(stream-reach): reason here\n");
  ASSERT_EQ(lexed.directives.nolint.size(), 1u);
  const auto& [line, rules] = *lexed.directives.nolint.begin();
  EXPECT_EQ(line, 1u);
  EXPECT_TRUE(rules.count("stream-reach"));
}

TEST(DtsaLexer, HotMarkerOnlyAsFirstWord) {
  const auto lexed = dtsa::lex(
      "// DT_HOT: real marker\n"
      "int f() { return 0; }\n"
      "// prose that mentions DT_HOT mid-sentence\n"
      "int g() { return 1; }\n");
  ASSERT_EQ(lexed.directives.hot_markers.size(), 1u);
  EXPECT_EQ(lexed.directives.hot_markers[0], 1u);
}

// ---------------------------------------------------------------------------
// Indexer
// ---------------------------------------------------------------------------

TEST(DtsaIndex, ExtractsQualifiedFunctionsAndSites) {
  const auto fi = dtsa::index_file("a.cpp",
                                   "namespace ns {\n"
                                   "struct S {\n"
                                   "  void m() { sleep_for(1); }\n"
                                   "};\n"
                                   "void free_fn() { std::to_string(2); }\n"
                                   "}  // namespace ns\n");
  const auto* m = find_fn(fi, "ns::S::m");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->sites.size(), 1u);
  EXPECT_EQ(m->sites[0].kind, dtsa::SiteKind::kBlocking);
  const auto* free_fn = find_fn(fi, "ns::free_fn");
  ASSERT_NE(free_fn, nullptr);
  ASSERT_EQ(free_fn->sites.size(), 1u);
  EXPECT_EQ(free_fn->sites[0].kind, dtsa::SiteKind::kAlloc);
}

TEST(DtsaIndex, LockRegionsAreCanonicalizedAndSpanScoped) {
  const auto fi = dtsa::index_file("a.cpp",
                                   "struct G {\n"
                                   "  util::Mutex mu_;\n"
                                   "  void f() {\n"
                                   "    { util::MutexLock lock(mu_); }\n"
                                   "    fopen(\"x\", \"r\");\n"
                                   "  }\n"
                                   "};\n");
  const auto* f = find_fn(fi, "G::f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->locks.size(), 1u);
  EXPECT_EQ(f->locks[0].mutexes, std::vector<std::string>{"G::mu_"});
  EXPECT_FALSE(f->locks[0].address_ordered);
  // The region closed before the fopen: its token span excludes the site.
  ASSERT_EQ(f->sites.size(), 1u);
  EXPECT_GT(f->sites[0].tok, f->locks[0].tok_end);
}

TEST(DtsaIndex, MutexLock2AndRequiresAnnotations) {
  const auto fi = dtsa::index_file("a.cpp",
                                   "struct P {\n"
                                   "  util::Mutex a_;\n"
                                   "  util::Mutex b_;\n"
                                   "  void both() { util::MutexLock2 lock(a_, b_); }\n"
                                   "  void held() DT_REQUIRES(a_) { fsync(0); }\n"
                                   "};\n");
  const auto* both = find_fn(fi, "P::both");
  ASSERT_NE(both, nullptr);
  ASSERT_EQ(both->locks.size(), 1u);
  EXPECT_TRUE(both->locks[0].address_ordered);
  EXPECT_EQ(both->locks[0].mutexes, (std::vector<std::string>{"P::a_", "P::b_"}));
  const auto* held = find_fn(fi, "P::held");
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->requires_mutexes, std::vector<std::string>{"P::a_"});
}

TEST(DtsaIndex, StrictDecodeNeedsCodecReceiver) {
  const auto fi = dtsa::index_file("a.cpp",
                                   "int f(C* decoder, P& parser) {\n"
                                   "  decoder->decode(1);\n"
                                   "  parser.decode(2);\n"
                                   "  return 0;\n"
                                   "}\n");
  const auto* f = find_fn(fi, "f");
  ASSERT_NE(f, nullptr);
  std::size_t strict = 0;
  for (const auto& s : f->sites)
    if (s.kind == dtsa::SiteKind::kStrictDecode) ++strict;
  EXPECT_EQ(strict, 1u);
}

// ---------------------------------------------------------------------------
// Call graph + rules, end to end over in-memory sources
// ---------------------------------------------------------------------------

dtsa::CallGraph graph_of(std::vector<std::pair<std::string, std::string>> sources) {
  std::vector<dtsa::FileIndex> files;
  files.reserve(sources.size());
  for (auto& [name, text] : sources) files.push_back(dtsa::index_file(name, text));
  return dtsa::CallGraph::build(std::move(files));
}

TEST(DtsaRules, InterproceduralBlockingUnderLock) {
  const auto g = graph_of({{"a.cpp",
                            "namespace n {\n"
                            "struct G {\n"
                            "  util::Mutex mu_;\n"
                            "  void leaf() { fopen(\"x\", \"r\"); }\n"
                            "  void locked() { util::MutexLock lock(mu_); leaf(); }\n"
                            "};\n"
                            "}\n"}});
  const auto findings = dtsa::run_rules(g, dtsa::RuleConfig{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-under-lock");
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_NE(findings[0].message.find("n::G::leaf"), std::string::npos);
}

TEST(DtsaRules, CondVarWaitIsNotBlocking) {
  // CondVar::wait releases the lock while waiting — deliberately NOT in the
  // blocking set, so this idiomatic pattern stays clean.
  const auto g = graph_of({{"a.cpp",
                            "struct W {\n"
                            "  util::Mutex mu_;\n"
                            "  util::CondVar cv_;\n"
                            "  void run() { util::MutexLock lock(mu_); cv_.wait(lock); }\n"
                            "};\n"}});
  EXPECT_TRUE(dtsa::run_rules(g, dtsa::RuleConfig{}).empty());
}

TEST(DtsaRules, HotPathReachesCalleeAllocations) {
  const auto g = graph_of({{"a.cpp",
                            "namespace n {\n"
                            "void helper(std::vector<int>& v) { v.push_back(1); }\n"
                            "// DT_HOT: root\n"
                            "void root(std::vector<int>& v) { helper(v); }\n"
                            "void cold(std::vector<int>& v) { v.push_back(2); }\n"
                            "}\n"}});
  const auto findings = dtsa::run_rules(g, dtsa::RuleConfig{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "alloc-in-hot-path");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(DtsaRules, DecodeTaintStopsAtNonFamilyFrontier) {
  dtsa::RuleConfig cfg;
  const auto g = graph_of(
      {{"compress/codec.cpp",
        "namespace fam { int decode_all(B& b) { return b.codec->decode(1); } }\n"},
       {"analyze/use.cpp",
        "namespace out {\n"
        "int direct_use(B& b) { return fam::decode_all(b); }\n"
        "int transitive(B& b) { return direct_use(b); }\n"
        "}\n"}});
  const auto findings = dtsa::run_rules(g, cfg);
  // Only the frontier call is reported; its non-family caller is not.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unbounded-decode-reach");
  EXPECT_EQ(findings[0].file, "analyze/use.cpp");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(DtsaRules, SuppressionFiltersByRuleAndWildcard) {
  auto files = std::vector<dtsa::FileIndex>{dtsa::index_file(
      "a.cpp",
      "struct G {\n"
      "  util::Mutex mu_;\n"
      "  void f() {\n"
      "    util::MutexLock lock(mu_);\n"
      "    fopen(\"x\", \"r\");  // NOLINT-DT(blocking-under-lock): test reason\n"
      "    fsync(0);  // NOLINT-DT(*): wildcard\n"
      "    fdatasync(0);  // NOLINT-DT(stream-reach): wrong rule id does not suppress\n"
      "  }\n"
      "};\n")};
  const auto g = dtsa::CallGraph::build(std::move(files));
  auto findings = dtsa::run_rules(g, dtsa::RuleConfig{});
  ASSERT_EQ(findings.size(), 3u);
  std::size_t suppressed = 0;
  const auto kept = dtsa::filter_suppressed(g, std::move(findings), &suppressed);
  EXPECT_EQ(suppressed, 2u);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].line, 7u);
}

TEST(DtsaRules, FindingsAreSortedAndDeduped) {
  const auto g = graph_of({{"b.cpp",
                            "struct G {\n"
                            "  util::Mutex mu_;\n"
                            "  void f() { util::MutexLock lock(mu_); fsync(0); }\n"
                            "};\n"},
                           {"a.cpp",
                            "struct H {\n"
                            "  util::Mutex mu_;\n"
                            "  void f() { util::MutexLock lock(mu_); fsync(0); }\n"
                            "};\n"}});
  const auto findings = dtsa::run_rules(g, dtsa::RuleConfig{});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "a.cpp");
  EXPECT_EQ(findings[1].file, "b.cpp");
}

TEST(DtsaRules, RegistryNamesAreStable) {
  std::vector<std::string> ids;
  for (const auto& r : dtsa::rule_registry()) ids.emplace_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"blocking-under-lock", "alloc-in-hot-path",
                                           "unbounded-decode-reach", "lock-order-consistency",
                                           "stream-reach"}));
}

}  // namespace
