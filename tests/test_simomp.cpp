#include "simomp/team.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "instrument/tracer.hpp"

namespace difftrace::simomp {
namespace {

TEST(SimOmp, RunsEveryThreadId) {
  std::mutex m;
  std::set<int> seen;
  parallel_region(0, 5, [&](int tid) {
    std::lock_guard lock(m);
    seen.insert(tid);
  });
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3, 4}));
}

TEST(SimOmp, MasterRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::thread::id master_id;
  parallel_region(0, 3, [&](int tid) {
    if (tid == 0) master_id = std::this_thread::get_id();
  });
  EXPECT_EQ(master_id, caller);
}

TEST(SimOmp, SingleThreadRegionIsJustTheCaller) {
  int calls = 0;
  parallel_region(0, 1, [&](int tid) {
    EXPECT_EQ(tid, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(SimOmp, RejectsNonpositiveThreadCount) {
  EXPECT_THROW(parallel_region(0, 0, [](int) {}), std::invalid_argument);
}

TEST(SimOmp, NestedRegionsRejected) {
  EXPECT_THROW(parallel_region(0, 2,
                               [&](int tid) {
                                 if (tid == 0) parallel_region(0, 2, [](int) {});
                               }),
               std::logic_error);
}

TEST(SimOmp, RegionsOfDifferentProcessesCoexist) {
  std::thread other([&] { parallel_region(1, 3, [](int) {}); });
  parallel_region(0, 3, [](int) {});
  other.join();
  SUCCEED();
}

TEST(SimOmp, CriticalSectionIsMutuallyExclusive) {
  int counter = 0;  // deliberately non-atomic: the critical section protects it
  constexpr int kIters = 2000;
  parallel_region(0, 8, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      Critical critical(0, "counter");
      ++counter;
    }
  });
  EXPECT_EQ(counter, 8 * kIters);
}

TEST(SimOmp, NamedCriticalsAreIndependentLocks) {
  // A thread holding critical "a" must not block one taking critical "b":
  // if the names shared one lock, this interleaving would deadlock.
  std::atomic<bool> a_held{false};
  std::atomic<bool> proceed{false};
  parallel_region(0, 2, [&](int tid) {
    if (tid == 0) {
      Critical a(0, "a");
      a_held.store(true);
      while (!proceed.load()) std::this_thread::yield();
    } else {
      while (!a_held.load()) std::this_thread::yield();
      Critical b(0, "b");  // must not block on "a"
      proceed.store(true);
    }
  });
  SUCCEED();
}

TEST(SimOmp, CriticalsScopedPerProcess) {
  // The same critical name in different processes uses different locks.
  std::atomic<bool> p0_held{false};
  std::atomic<bool> done{false};
  std::thread p1([&] {
    while (!p0_held.load()) std::this_thread::yield();
    parallel_region(1, 1, [&](int) {
      Critical c(1, "champ");
      done.store(true);
    });
  });
  parallel_region(0, 1, [&](int) {
    Critical c(0, "champ");
    p0_held.store(true);
    while (!done.load()) std::this_thread::yield();
  });
  p1.join();
}

TEST(SimOmp, BarrierSynchronizesTeam) {
  std::atomic<int> phase1{0};
  parallel_region(0, 6, [&](int) {
    phase1.fetch_add(1);
    team_barrier(0);
    EXPECT_EQ(phase1.load(), 6);
  });
}

TEST(SimOmp, BarrierReusableAcrossGenerations) {
  std::atomic<int> count{0};
  parallel_region(0, 4, [&](int) {
    for (int round = 0; round < 5; ++round) {
      count.fetch_add(1);
      team_barrier(0);
      EXPECT_EQ(count.load() % 4, 0);
      team_barrier(0);
    }
  });
  EXPECT_EQ(count.load(), 20);
}

TEST(SimOmp, BarrierOutsideRegionThrows) { EXPECT_THROW(team_barrier(42), std::logic_error); }

TEST(SimOmp, RegionsAndCriticalsEmitGompTraceEvents) {
  auto& tracer = instrument::Tracer::instance();
  tracer.begin_session(std::make_shared<trace::FunctionRegistry>());
  {
    instrument::ThreadBinding bind(trace::TraceKey{7, 0});
    // parallel_region binds worker threads as {proc, tid} itself.
    parallel_region(7, 2, [](int tid) {
      if (tid == 1) Critical c(7, "x");
    });
  }
  const auto store = tracer.end_session();

  // Master trace: the fork/join bracket.
  std::vector<std::string> master_names;
  for (const auto& event : store.decode({7, 0}))
    if (event.kind == trace::EventKind::Call)
      master_names.push_back(store.registry().name(event.fid));
  EXPECT_NE(std::find(master_names.begin(), master_names.end(), "GOMP_parallel_start"),
            master_names.end());
  EXPECT_NE(std::find(master_names.begin(), master_names.end(), "GOMP_parallel_end"),
            master_names.end());

  // Worker trace: the critical bracket (with @plt stubs).
  std::vector<std::string> worker_names;
  for (const auto& event : store.decode({7, 1}))
    if (event.kind == trace::EventKind::Call)
      worker_names.push_back(store.registry().name(event.fid));
  EXPECT_NE(std::find(worker_names.begin(), worker_names.end(), "GOMP_critical_start"),
            worker_names.end());
  EXPECT_NE(std::find(worker_names.begin(), worker_names.end(), "GOMP_critical_end"),
            worker_names.end());
  EXPECT_NE(std::find(worker_names.begin(), worker_names.end(), "GOMP_critical_start@plt"),
            worker_names.end());
}

TEST(SimOmp, WorkerExceptionPropagatesAfterJoin) {
  std::atomic<int> completed{0};
  try {
    parallel_region(0, 4, [&](int tid) {
      if (tid == 2) throw std::runtime_error("worker boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker boom");
  }
  EXPECT_EQ(completed.load(), 3);  // all other threads were joined, not leaked
}

TEST(SimOmp, MasterExceptionStillJoinsWorkers) {
  std::atomic<int> workers_done{0};
  EXPECT_THROW(parallel_region(0, 4,
                               [&](int tid) {
                                 if (tid == 0) throw std::logic_error("master boom");
                                 workers_done.fetch_add(1);
                               }),
               std::logic_error);
  EXPECT_EQ(workers_done.load(), 3);
}

TEST(SimOmp, RegionCanRunAgainAfterException) {
  EXPECT_THROW(parallel_region(0, 2, [](int) { throw std::runtime_error("x"); }),
               std::runtime_error);
  int runs = 0;
  parallel_region(0, 2, [&](int) {
    Critical c(0, "again");
    ++runs;
  });
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace difftrace::simomp
