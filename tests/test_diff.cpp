#include "core/diff.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

using Seq = std::vector<std::uint32_t>;

/// Replays an edit script: must transform `a` into `b` exactly.
Seq apply_script(const Seq& a, const Seq& b, const std::vector<EditChunk>& script) {
  Seq out;
  std::size_t a_pos = 0;
  for (const auto& chunk : script) {
    switch (chunk.op) {
      case EditOp::Equal:
        EXPECT_EQ(chunk.a_begin, a_pos);
        for (std::size_t i = 0; i < chunk.length; ++i) out.push_back(a[chunk.a_begin + i]);
        a_pos = chunk.a_begin + chunk.length;
        break;
      case EditOp::Delete:
        EXPECT_EQ(chunk.a_begin, a_pos);
        a_pos += chunk.length;
        break;
      case EditOp::Insert:
        for (std::size_t i = 0; i < chunk.length; ++i) out.push_back(b[chunk.b_begin + i]);
        break;
    }
  }
  EXPECT_EQ(a_pos, a.size());
  return out;
}

/// O(nm) DP edit distance (insert+delete only), the oracle for minimality.
std::size_t dp_distance(const Seq& a, const Seq& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1])
        cur[j] = prev[j - 1];
      else
        cur[j] = 1 + std::min(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

TEST(MyersDiff, IdenticalSequences) {
  const Seq a = {1, 2, 3};
  const auto script = myers_diff(a, a);
  ASSERT_EQ(script.size(), 1u);
  EXPECT_EQ(script[0].op, EditOp::Equal);
  EXPECT_EQ(script[0].length, 3u);
  EXPECT_EQ(edit_distance(script), 0u);
}

TEST(MyersDiff, BothEmpty) { EXPECT_TRUE(myers_diff({}, {}).empty()); }

TEST(MyersDiff, InsertIntoEmpty) {
  const Seq b = {5, 6};
  const auto script = myers_diff({}, b);
  ASSERT_EQ(script.size(), 1u);
  EXPECT_EQ(script[0].op, EditOp::Insert);
  EXPECT_EQ(script[0].length, 2u);
}

TEST(MyersDiff, DeleteToEmpty) {
  const Seq a = {5, 6, 7};
  const auto script = myers_diff(a, {});
  ASSERT_EQ(script.size(), 1u);
  EXPECT_EQ(script[0].op, EditOp::Delete);
  EXPECT_EQ(edit_distance(script), 3u);
}

TEST(MyersDiff, ClassicExample) {
  // ABCABBA -> CBABAC (Myers' paper example, distance 5).
  const Seq a = {'A', 'B', 'C', 'A', 'B', 'B', 'A'};
  const Seq b = {'C', 'B', 'A', 'B', 'A', 'C'};
  const auto script = myers_diff(a, b);
  EXPECT_EQ(edit_distance(script), 5u);
  EXPECT_EQ(apply_script(a, b, script), b);
}

TEST(MyersDiff, CompletelyDisjoint) {
  const Seq a = {1, 2};
  const Seq b = {3, 4, 5};
  const auto script = myers_diff(a, b);
  EXPECT_EQ(edit_distance(script), 5u);
  EXPECT_EQ(apply_script(a, b, script), b);
}

TEST(MyersDiff, SwapBugShape) {
  // L1^16 vs [L1^7, L0^9]: one delete, two inserts (no common token since
  // counts differ).
  const Seq a = {100};       // L1^16
  const Seq b = {101, 102};  // L1^7, L0^9
  const auto script = myers_diff(a, b);
  EXPECT_EQ(edit_distance(script), 3u);
  EXPECT_EQ(apply_script(a, b, script), b);
}

struct RandomDiffParam {
  std::size_t len_a;
  std::size_t len_b;
  std::uint32_t alphabet;
  std::uint64_t seed;
};

class MyersRandom : public ::testing::TestWithParam<RandomDiffParam> {};

TEST_P(MyersRandom, ScriptIsValidAndMinimal) {
  const auto p = GetParam();
  util::Xoshiro256 rng(p.seed);
  Seq a(p.len_a);
  Seq b(p.len_b);
  for (auto& v : a) v = static_cast<std::uint32_t>(rng.below(p.alphabet));
  for (auto& v : b) v = static_cast<std::uint32_t>(rng.below(p.alphabet));
  const auto script = myers_diff(a, b);
  EXPECT_EQ(apply_script(a, b, script), b);
  EXPECT_EQ(edit_distance(script), dp_distance(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MyersRandom,
    ::testing::Values(RandomDiffParam{0, 5, 3, 1}, RandomDiffParam{5, 0, 3, 2},
                      RandomDiffParam{10, 10, 2, 3}, RandomDiffParam{10, 10, 8, 4},
                      RandomDiffParam{40, 37, 4, 5}, RandomDiffParam{100, 100, 3, 6},
                      RandomDiffParam{100, 5, 6, 7}, RandomDiffParam{63, 90, 2, 8},
                      RandomDiffParam{1, 1, 1, 9}, RandomDiffParam{200, 180, 12, 10}));

TEST(MyersDiff, RelatedSequencesProduceEqualRuns) {
  // b = a with a small edit in the middle: the script must keep long Equal
  // runs around it.
  Seq a(50);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint32_t>(i % 7);
  Seq b = a;
  b[25] = 99;
  const auto script = myers_diff(a, b);
  EXPECT_EQ(edit_distance(script), 2u);
  EXPECT_EQ(script.front().op, EditOp::Equal);
  EXPECT_EQ(script.back().op, EditOp::Equal);
}

}  // namespace
}  // namespace difftrace::core
