#include "util/bitset.hpp"

#include <gtest/gtest.h>

namespace difftrace::util {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, SetAndTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
}

TEST(DynamicBitset, ClearBit) {
  DynamicBitset b(10);
  b.set(5);
  b.set(5, false);
  EXPECT_FALSE(b.test(5));
}

TEST(DynamicBitset, ThrowsOnOutOfRange) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW((void)b.test(10), std::out_of_range);
}

TEST(DynamicBitset, ThrowsOnSizeMismatch) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
}

TEST(DynamicBitset, IntersectionAndUnion) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(127);
  const auto inter = a & b;
  EXPECT_EQ(inter.count(), 1u);
  EXPECT_TRUE(inter.test(100));
  const auto uni = a | b;
  EXPECT_EQ(uni.count(), 3u);
}

TEST(DynamicBitset, SubsetRelation) {
  DynamicBitset a(64);
  DynamicBitset b(64);
  a.set(3);
  b.set(3);
  b.set(40);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(DynamicBitset(64).is_subset_of(a));
}

TEST(DynamicBitset, ToIndicesAscending) {
  DynamicBitset b(200);
  b.set(199);
  b.set(0);
  b.set(64);
  const auto idx = b.to_indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(DynamicBitset, ToStringRendersSet) {
  DynamicBitset b(8);
  b.set(1);
  b.set(5);
  EXPECT_EQ(b.to_string(), "{1, 5}");
}

TEST(DynamicBitset, EqualityAndHash) {
  DynamicBitset a(64);
  DynamicBitset b(64);
  a.set(5);
  b.set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(6);
  EXPECT_NE(a, b);
}

TEST(DynamicBitset, HashDistinguishesSizes) {
  EXPECT_NE(DynamicBitset(3).hash(), DynamicBitset(5).hash());
}

}  // namespace
}  // namespace difftrace::util
