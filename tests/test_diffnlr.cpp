#include "core/diffnlr.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace difftrace::core {
namespace {

struct Fixture {
  TokenTable tokens;
  LoopTable loops;

  NlrProgram reduce(const std::vector<std::string>& names) {
    std::vector<TokenId> ids;
    for (const auto& n : names) ids.push_back(tokens.intern(n));
    return build_nlr(ids, loops);
  }

  std::vector<std::string> repeat_pair(const std::string& a, const std::string& b, int reps,
                                       std::vector<std::string> tail = {}) {
    std::vector<std::string> out;
    for (int i = 0; i < reps; ++i) {
      out.push_back(a);
      out.push_back(b);
    }
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
  }
};

TEST(DiffNlr, IdenticalProgramsAreAllCommon) {
  Fixture f;
  const auto p = f.reduce({"MPI_Init", "a", "b", "a", "b", "MPI_Finalize"});
  const auto d = diff_nlr(p, p, f.tokens);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.distance(), 0u);
  ASSERT_EQ(d.blocks.size(), 1u);
  EXPECT_EQ(d.blocks[0].normal_items.size(), 3u);
}

TEST(DiffNlr, SwapBugFigureFive) {
  // Figure 5: normal = init/rank/size, L1^16, finalize;
  //           faulty = init/rank/size, L1^7, L0^9, finalize.
  Fixture f;
  // Prime L0 = [s,r] like an even-rank trace would.
  (void)f.reduce({"MPI_Send", "MPI_Recv", "MPI_Send", "MPI_Recv"});
  std::vector<std::string> head = {"MPI_Init", "MPI_Comm_rank", "MPI_Comm_size"};
  auto normal_tokens = head;
  const auto normal_body = f.repeat_pair("MPI_Recv", "MPI_Send", 16, {"MPI_Finalize"});
  normal_tokens.insert(normal_tokens.end(), normal_body.begin(), normal_body.end());

  auto faulty_tokens = head;
  const auto phase1 = f.repeat_pair("MPI_Recv", "MPI_Send", 7);
  const auto phase2 = f.repeat_pair("MPI_Send", "MPI_Recv", 9, {"MPI_Finalize"});
  faulty_tokens.insert(faulty_tokens.end(), phase1.begin(), phase1.end());
  faulty_tokens.insert(faulty_tokens.end(), phase2.begin(), phase2.end());

  const auto d = diff_nlr(f.reduce(normal_tokens), f.reduce(faulty_tokens), f.tokens);
  EXPECT_FALSE(d.identical());
  const auto text = d.render();
  // Common stem includes the MPI prologue and MPI_Finalize.
  EXPECT_NE(text.find("= MPI_Init"), std::string::npos);
  EXPECT_NE(text.find("= MPI_Finalize"), std::string::npos);
  // Normal-only: the 16-iteration loop; faulty-only: the split loops.
  EXPECT_NE(text.find("- L1^16"), std::string::npos);
  EXPECT_NE(text.find("+ L1^7"), std::string::npos);
  EXPECT_NE(text.find("+ L0^9"), std::string::npos);
}

TEST(DiffNlr, DlBugFigureSix) {
  // Figure 6: the faulty trace never reaches MPI_Finalize and ends with the
  // stuck MPI_Recv.
  Fixture f;
  auto normal_tokens = f.repeat_pair("MPI_Recv", "MPI_Send", 16, {"MPI_Finalize"});
  auto faulty_tokens = f.repeat_pair("MPI_Recv", "MPI_Send", 7, {"MPI_Recv"});
  const auto d = diff_nlr(f.reduce(normal_tokens), f.reduce(faulty_tokens), f.tokens);
  const auto text = d.render();
  EXPECT_NE(text.find("- L0^16"), std::string::npos);
  EXPECT_NE(text.find("- MPI_Finalize"), std::string::npos);  // normal only!
  EXPECT_NE(text.find("+ L0^7"), std::string::npos);
  EXPECT_NE(text.find("+ MPI_Recv"), std::string::npos);
  EXPECT_EQ(text.find("= MPI_Finalize"), std::string::npos);
}

TEST(DiffNlr, SideBySideAlignsDiffColumns) {
  Fixture f;
  // Prime L0 = [s,r].
  (void)f.reduce({"MPI_Send", "MPI_Recv", "MPI_Send", "MPI_Recv"});
  auto normal_tokens = f.repeat_pair("MPI_Recv", "MPI_Send", 16, {"MPI_Finalize"});
  auto faulty_tokens = f.repeat_pair("MPI_Recv", "MPI_Send", 7);
  const auto tail = f.repeat_pair("MPI_Send", "MPI_Recv", 9, {"MPI_Finalize"});
  faulty_tokens.insert(faulty_tokens.end(), tail.begin(), tail.end());
  const auto d = diff_nlr(f.reduce(normal_tokens), f.reduce(faulty_tokens), f.tokens, f.loops);

  const auto text = d.render_side_by_side();
  // Header and main stem spanning both columns.
  EXPECT_NE(text.find("normal"), std::string::npos);
  EXPECT_NE(text.find("faulty"), std::string::npos);
  EXPECT_NE(text.find("MPI_Finalize"), std::string::npos);
  // The delete/insert pair lines up on one row: L1^16 left, L1^7 right.
  std::istringstream lines(text);
  std::string line;
  bool aligned = false;
  while (std::getline(lines, line))
    if (line.find("L1^16") != std::string::npos && line.find("L1^7") != std::string::npos)
      aligned = true;
  EXPECT_TRUE(aligned) << text;
  // Legend present.
  EXPECT_NE(text.find("where:"), std::string::npos);
}

TEST(DiffNlr, SideBySideInsertOnlyBlock) {
  Fixture f;
  const auto a = f.reduce({"x", "z"});
  const auto b = f.reduce({"x", "y", "z"});
  const auto text = diff_nlr(a, b, f.tokens).render_side_by_side();
  std::istringstream lines(text);
  std::string line;
  bool y_on_right_only = false;
  while (std::getline(lines, line)) {
    const auto pos = line.find('y');
    if (pos != std::string::npos && line.find('|', 1) < pos) y_on_right_only = true;
  }
  EXPECT_TRUE(y_on_right_only) << text;
}

TEST(DiffNlr, ColorRenderingCarriesAnsiCodes) {
  Fixture f;
  const auto a = f.reduce({"x"});
  const auto b = f.reduce({"y"});
  const auto text = diff_nlr(a, b, f.tokens).render(/*color=*/true);
  EXPECT_NE(text.find("\x1b[34m"), std::string::npos);  // blue normal-only
  EXPECT_NE(text.find("\x1b[31m"), std::string::npos);  // red faulty-only
  EXPECT_NE(text.find("\x1b[0m"), std::string::npos);
}

TEST(DiffNlr, DistanceCountsBothSides) {
  Fixture f;
  const auto a = f.reduce({"p", "q"});
  const auto b = f.reduce({"p", "r", "s"});
  const auto d = diff_nlr(a, b, f.tokens);
  EXPECT_EQ(d.distance(), 3u);  // -q, +r, +s
}

TEST(DiffNlr, EmptyPrograms) {
  Fixture f;
  const auto d = diff_nlr({}, {}, f.tokens);
  EXPECT_TRUE(d.identical());
  EXPECT_TRUE(d.blocks.empty());
}

}  // namespace
}  // namespace difftrace::core
