#include "core/fca.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

/// Table IV of the paper: the odd/even-sort formal context.
FormalContext paper_context() {
  FormalContext ctx;
  const auto t0 = ctx.add_object("Trace 0");
  const auto t1 = ctx.add_object("Trace 1");
  const auto t2 = ctx.add_object("Trace 2");
  const auto t3 = ctx.add_object("Trace 3");
  for (const auto g : {t0, t1, t2, t3}) {
    ctx.set_incidence(g, "MPI_Init");
    ctx.set_incidence(g, "MPI_Comm_size");
    ctx.set_incidence(g, "MPI_Comm_rank");
    ctx.set_incidence(g, "MPI_Finalize");
  }
  ctx.set_incidence(t0, "L0");
  ctx.set_incidence(t2, "L0");
  ctx.set_incidence(t1, "L1");
  ctx.set_incidence(t3, "L1");
  return ctx;
}

std::set<std::string> intent_set(const Lattice& lattice) {
  std::set<std::string> out;
  for (const auto& c : lattice.concepts) out.insert(c.intent.to_string());
  return out;
}

TEST(FormalContext, GrowsAttributesOnDemand) {
  FormalContext ctx;
  const auto g = ctx.add_object("obj");
  ctx.set_incidence(g, "a");
  ctx.set_incidence(g, "b");
  const auto h = ctx.add_object("obj2");
  ctx.set_incidence(h, "b");
  EXPECT_EQ(ctx.attribute_count(), 2u);
  EXPECT_TRUE(ctx.incident(g, 0));
  EXPECT_FALSE(ctx.incident(h, 0));
  EXPECT_TRUE(ctx.incident(h, *ctx.find_attribute("b")));
}

TEST(FormalContext, DerivationOperators) {
  const auto ctx = paper_context();
  util::DynamicBitset evens(4);
  evens.set(0);
  evens.set(2);
  const auto common = ctx.derive_objects(evens);
  EXPECT_EQ(common.count(), 5u);  // four shared MPI calls + L0
  util::DynamicBitset l0(ctx.attribute_count());
  l0.set(*ctx.find_attribute("L0"));
  const auto extent = ctx.derive_attributes(l0);
  EXPECT_EQ(extent.to_string(), "{0, 2}");
}

TEST(FormalContext, ClosureIsIdempotentAndExtensive) {
  const auto ctx = paper_context();
  util::DynamicBitset attrs(ctx.attribute_count());
  attrs.set(0);  // MPI_Init
  const auto closed = ctx.closure(attrs);
  EXPECT_TRUE(attrs.is_subset_of(closed));
  EXPECT_EQ(ctx.closure(closed), closed);
  EXPECT_EQ(closed.count(), 4u);  // MPI_Init pulls in the other shared calls
}

TEST(FormalContext, RenderShowsGrid) {
  const auto s = paper_context().render();
  EXPECT_NE(s.find("Trace 0"), std::string::npos);
  EXPECT_NE(s.find("L0"), std::string::npos);
  EXPECT_NE(s.find('x'), std::string::npos);
}

TEST(Lattice, PaperExampleHasFigureThreeStructure) {
  // Figure 3: top (all traces, shared calls), two middle concepts (even
  // traces with L0, odd traces with L1), bottom (no trace has everything).
  const auto ctx = paper_context();
  const auto lattice = next_closure_lattice(ctx);
  ASSERT_EQ(lattice.size(), 4u);
  EXPECT_EQ(lattice.concepts[0].extent.count(), 4u);  // top
  EXPECT_EQ(lattice.concepts[0].intent.count(), 4u);  // the shared MPI calls
  EXPECT_EQ(lattice.concepts[1].extent.count(), 2u);
  EXPECT_EQ(lattice.concepts[2].extent.count(), 2u);
  EXPECT_EQ(lattice.concepts[3].extent.count(), 0u);  // bottom
  EXPECT_EQ(lattice.concepts[3].intent.count(), 6u);
  EXPECT_EQ(lattice.cover_edges().size(), 4u);  // diamond
}

TEST(Lattice, IncrementalMatchesNextClosureOnPaperExample) {
  const auto ctx = paper_context();
  EXPECT_EQ(intent_set(incremental_lattice(ctx)), intent_set(next_closure_lattice(ctx)));
}

TEST(Lattice, ObjectConceptIsMostSpecific) {
  const auto ctx = paper_context();
  const auto lattice = next_closure_lattice(ctx);
  const auto c0 = lattice.object_concept(0);
  EXPECT_EQ(lattice.concepts[c0].extent.to_string(), "{0, 2}");
  EXPECT_TRUE(lattice.concepts[c0].intent.test(*ctx.find_attribute("L0")));
}

TEST(Lattice, RenderUsesReducedLabelling) {
  const auto ctx = paper_context();
  const auto s = next_closure_lattice(ctx).render(ctx);
  EXPECT_NE(s.find("Trace 0"), std::string::npos);
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("cover edge"), std::string::npos);
}

TEST(IncrementalLattice, EmptyContextHasSingleConcept) {
  IncrementalLattice inc(3);
  EXPECT_EQ(inc.concept_count(), 1u);
  const auto lattice = inc.build();
  ASSERT_EQ(lattice.size(), 1u);
  EXPECT_EQ(lattice.concepts[0].intent.count(), 3u);
  EXPECT_EQ(lattice.concepts[0].extent.count(), 0u);
}

TEST(IncrementalLattice, RejectsWrongBitsetSize) {
  IncrementalLattice inc(3);
  EXPECT_THROW(inc.add_object(util::DynamicBitset(4)), std::invalid_argument);
}

TEST(IncrementalLattice, ConceptCapThrowsInsteadOfExploding) {
  // Pairwise-disjoint half-overlapping intents blow up the concept count;
  // a tight cap must fail fast.
  IncrementalLattice inc(16, /*max_concepts=*/8);
  util::Xoshiro256 rng(5);
  EXPECT_THROW(
      {
        for (int g = 0; g < 16; ++g) {
          util::DynamicBitset attrs(16);
          for (std::size_t m = 0; m < 16; ++m)
            if (rng.uniform() < 0.5) attrs.set(m);
          inc.add_object(attrs);
        }
      },
      std::length_error);
}

TEST(IncrementalLattice, ZeroAttributes) {
  IncrementalLattice inc(0);
  inc.add_object(util::DynamicBitset(0));
  inc.add_object(util::DynamicBitset(0));
  const auto lattice = inc.build();
  EXPECT_EQ(lattice.size(), 1u);
  EXPECT_EQ(lattice.concepts[0].extent.count(), 2u);
}

// Property: incremental and NextClosure agree on random contexts, and all
// lattice invariants hold.
struct RandomParam {
  std::size_t objects;
  std::size_t attributes;
  double density;
  std::uint64_t seed;
};

class RandomContexts : public ::testing::TestWithParam<RandomParam> {
 protected:
  FormalContext make() const {
    const auto p = GetParam();
    util::Xoshiro256 rng(p.seed);
    FormalContext ctx;
    for (std::size_t m = 0; m < p.attributes; ++m) ctx.add_attribute("m" + std::to_string(m));
    for (std::size_t g = 0; g < p.objects; ++g) {
      ctx.add_object("g" + std::to_string(g));
      for (std::size_t m = 0; m < p.attributes; ++m)
        if (rng.uniform() < p.density) ctx.set_incidence(g, m);
    }
    return ctx;
  }
};

TEST_P(RandomContexts, IncrementalEqualsNextClosure) {
  const auto ctx = make();
  EXPECT_EQ(intent_set(incremental_lattice(ctx)), intent_set(next_closure_lattice(ctx)));
}

TEST_P(RandomContexts, ConceptsAreGaloisClosed) {
  const auto ctx = make();
  for (const auto& c : incremental_lattice(ctx).concepts) {
    EXPECT_EQ(ctx.derive_attributes(c.intent), c.extent);
    EXPECT_EQ(ctx.derive_objects(c.extent), c.intent);
  }
}

TEST_P(RandomContexts, IntentsClosedUnderIntersection) {
  const auto ctx = make();
  const auto lattice = incremental_lattice(ctx);
  std::set<std::string> intents;
  for (const auto& c : lattice.concepts) intents.insert(c.intent.to_string());
  for (const auto& a : lattice.concepts)
    for (const auto& b : lattice.concepts)
      EXPECT_TRUE(intents.contains((a.intent & b.intent).to_string()));
}

TEST_P(RandomContexts, EveryObjectIntentIsSomeConceptIntent) {
  const auto ctx = make();
  const auto lattice = incremental_lattice(ctx);
  for (std::size_t g = 0; g < ctx.object_count(); ++g) {
    const auto oc = lattice.object_concept(g);
    EXPECT_EQ(lattice.concepts[oc].intent, ctx.object_intent(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomContexts,
                         ::testing::Values(RandomParam{1, 1, 0.5, 1}, RandomParam{3, 4, 0.5, 2},
                                           RandomParam{5, 6, 0.3, 3}, RandomParam{5, 6, 0.8, 4},
                                           RandomParam{8, 8, 0.5, 5}, RandomParam{10, 6, 0.4, 6},
                                           RandomParam{6, 10, 0.6, 7}, RandomParam{12, 5, 0.2, 8}));

}  // namespace
}  // namespace difftrace::core
