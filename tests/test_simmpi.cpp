#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <span>
#include <thread>

#include "simmpi/runtime.hpp"

namespace difftrace::simmpi {
namespace {

WorldConfig fast_world(int nranks) {
  WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(10'000);
  return config;
}

TEST(SimMpi, RankAndSizeQueries) {
  std::vector<int> seen(4, -1);
  const auto report = run_world(fast_world(4), [&](Comm& comm) {
    EXPECT_EQ(comm.comm_size(), 4);
    seen[static_cast<std::size_t>(comm.rank())] = comm.comm_rank();
  });
  EXPECT_TRUE(report.all_completed());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(SimMpi, SendRecvDeliversPayload) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::int32_t values[3] = {10, 20, 30};
      comm.send(std::span<const std::int32_t>(values), 1, 7);
    } else {
      std::int32_t buf[3] = {};
      const auto count = comm.recv(std::span<std::int32_t>(buf), 0, 7);
      EXPECT_EQ(count, 3u);
      EXPECT_EQ(buf[2], 30);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, MessagesMatchedFifoPerSourceAndTag) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::int32_t i = 0; i < 5; ++i) comm.send_value(i, 1, 3);
    } else {
      for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(comm.recv_value<std::int32_t>(0, 3), i);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, TagsSelectMessages) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(std::int32_t{111}, 1, 1);
      comm.send_value(std::int32_t{222}, 1, 2);
    } else {
      // Receive in the opposite order of the sends.
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<std::int32_t>(0, 1), 111);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, TruncatingReceiveFails) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::int32_t values[4] = {1, 2, 3, 4};
      comm.send(std::span<const std::int32_t>(values), 1, 0);
    } else {
      std::int32_t buf[2] = {};
      EXPECT_THROW((void)comm.recv(std::span<std::int32_t>(buf), 0, 0), MpiError);
    }
  });
  // Rank 1 threw; the harness records it as Failed only if it escaped, but
  // EXPECT_THROW swallowed it, so both complete.
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, BadRankArgumentsThrow) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(std::int32_t{1}, 5, 0), MpiError);
      std::int32_t v = 0;
      EXPECT_THROW((void)comm.recv(std::span<std::int32_t>(&v, 1), -1, 0), MpiError);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, IsendIrecvWait) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      const double value = 2.5;
      auto req = comm.isend(std::span<const double>(&value, 1), 1, 9);
      comm.wait(req);
      EXPECT_TRUE(req.complete());
    } else {
      double buf = 0.0;
      auto req = comm.irecv(std::span<double>(&buf, 1), 0, 9);
      comm.wait(req);
      EXPECT_DOUBLE_EQ(buf, 2.5);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, RendezvousSendBlocksUntilReceived) {
  // Payload above the eager limit: the sender cannot complete before the
  // receiver posts.
  WorldConfig config = fast_world(2);
  config.eager_limit = 16;
  std::atomic<bool> receiver_started{false};
  const auto report = run_world(config, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::int32_t> big(64, 7);
      comm.send(std::span<const std::int32_t>(big), 1, 0);
      EXPECT_TRUE(receiver_started.load());  // could only complete after recv
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      receiver_started.store(true);
      std::vector<std::int32_t> buf(64);
      comm.recv(std::span<std::int32_t>(buf), 0, 0);
      EXPECT_EQ(buf[63], 7);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, HeadToHeadRendezvousSendsDeadlock) {
  // The §II-B waiting trap: Send ‖ Send above the eager limit.
  WorldConfig config = fast_world(2);
  config.eager_limit = 4;
  const auto report = run_world(config, [](Comm& comm) {
    std::vector<std::int32_t> big(64, comm.rank());
    std::vector<std::int32_t> buf(64);
    const int peer = 1 - comm.rank();
    comm.send(std::span<const std::int32_t>(big), peer, 0);
    comm.recv(std::span<std::int32_t>(buf), peer, 0);
  });
  EXPECT_TRUE(report.deadlock);
  EXPECT_EQ(report.ranks[0].status, RankStatus::Aborted);
  EXPECT_EQ(report.ranks[1].status, RankStatus::Aborted);
  EXPECT_NE(report.deadlock_info.find("MPI_Send"), std::string::npos);
}

TEST(SimMpi, HeadToHeadEagerSendsComplete) {
  // Same exchange below the eager limit completes — the paper's point that
  // the swapBug is latent under buffering.
  WorldConfig config = fast_world(2);
  config.eager_limit = 4096;
  const auto report = run_world(config, [](Comm& comm) {
    std::vector<std::int32_t> big(64, comm.rank());
    std::vector<std::int32_t> buf(64);
    const int peer = 1 - comm.rank();
    comm.send(std::span<const std::int32_t>(big), peer, 0);
    comm.recv(std::span<std::int32_t>(buf), peer, 0);
    EXPECT_EQ(buf[0], peer);
  });
  EXPECT_TRUE(report.all_completed());
  EXPECT_FALSE(report.deadlock);
}

TEST(SimMpi, BarrierSynchronizes) {
  std::atomic<int> before{0};
  const auto report = run_world(fast_world(4), [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), 4);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, BcastDistributesFromRoot) {
  const auto report = run_world(fast_world(4), [](Comm& comm) {
    double value = comm.rank() == 2 ? 6.25 : 0.0;
    comm.bcast(std::span<double>(&value, 1), 2);
    EXPECT_DOUBLE_EQ(value, 6.25);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, ReduceToRoot) {
  const auto report = run_world(fast_world(4), [](Comm& comm) {
    const std::int64_t mine = comm.rank() + 1;
    std::int64_t out = -1;
    comm.reduce(std::span<const std::int64_t>(&mine, 1), std::span<std::int64_t>(&out, 1),
                ReduceOp::Sum, 0);
    if (comm.rank() == 0)
      EXPECT_EQ(out, 10);
    else
      EXPECT_EQ(out, -1);  // non-roots untouched
  });
  EXPECT_TRUE(report.all_completed());
}

class AllreduceOps : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(AllreduceOps, AllRanksAgree) {
  const auto op = GetParam();
  const auto report = run_world(fast_world(5), [op](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double out = comm.allreduce_value(mine, op);
    double expected = 0.0;
    switch (op) {
      case ReduceOp::Sum: expected = 15.0; break;
      case ReduceOp::Min: expected = 1.0; break;
      case ReduceOp::Max: expected = 5.0; break;
      case ReduceOp::Prod: expected = 120.0; break;
    }
    EXPECT_DOUBLE_EQ(out, expected);
  });
  EXPECT_TRUE(report.all_completed());
}

INSTANTIATE_TEST_SUITE_P(AllOps, AllreduceOps,
                         ::testing::Values(ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max,
                                           ReduceOp::Prod));

TEST(SimMpi, AllreduceVector) {
  const auto report = run_world(fast_world(3), [](Comm& comm) {
    const std::int32_t mine[2] = {comm.rank(), -comm.rank()};
    std::int32_t out[2] = {};
    comm.allreduce(std::span<const std::int32_t>(mine), std::span<std::int32_t>(out), ReduceOp::Sum);
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(out[1], -3);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, WrongCollectiveSizeHangsWholeJob) {
  // Table VII's fault class: one rank contributes a different count.
  const auto report = run_world(fast_world(3), [](Comm& comm) {
    if (comm.rank() == 1) {
      const double mine[2] = {1.0, 2.0};
      double out[2] = {};
      comm.allreduce(std::span<const double>(mine), std::span<double>(out), ReduceOp::Min);
    } else {
      (void)comm.allreduce_value(1.0, ReduceOp::Min);
    }
  });
  EXPECT_TRUE(report.deadlock);
  for (const auto& rank : report.ranks) EXPECT_EQ(rank.status, RankStatus::Aborted);
}

TEST(SimMpi, MismatchedCollectiveTypesHang) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0)
      comm.barrier();
    else
      (void)comm.allreduce_value(1.0, ReduceOp::Sum);
  });
  EXPECT_TRUE(report.deadlock);
}

TEST(SimMpi, WrongOpTerminatesWithPerRankResults) {
  // Table VIII's fault class: op mismatch is silent — each rank reduces
  // with its own operator.
  const auto report = run_world(fast_world(3), [](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const auto op = comm.rank() == 0 ? ReduceOp::Max : ReduceOp::Min;
    const double out = comm.allreduce_value(mine, op);
    if (comm.rank() == 0)
      EXPECT_DOUBLE_EQ(out, 3.0);
    else
      EXPECT_DOUBLE_EQ(out, 1.0);
  });
  EXPECT_TRUE(report.all_completed());
  EXPECT_FALSE(report.deadlock);
}

TEST(SimMpi, RecvWithNoSenderDeadlocks) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::int32_t v = 0;
      (void)comm.recv(std::span<std::int32_t>(&v, 1), 1, 0);
    }
    // rank 1 returns immediately; rank 0 waits forever.
  });
  EXPECT_TRUE(report.deadlock);
  EXPECT_EQ(report.ranks[0].status, RankStatus::Aborted);
  EXPECT_EQ(report.ranks[1].status, RankStatus::Completed);
}

TEST(SimMpi, WaitallCompletesMixedRequests) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::int32_t a = 5;
      const std::int32_t b = 6;
      Request reqs[2] = {comm.isend(std::span<const std::int32_t>(&a, 1), 1, 1),
                         comm.isend(std::span<const std::int32_t>(&b, 1), 1, 2)};
      comm.waitall(std::span<Request>(reqs));
      EXPECT_TRUE(reqs[0].complete());
      EXPECT_TRUE(reqs[1].complete());
    } else {
      std::int32_t a = 0;
      std::int32_t b = 0;
      Request reqs[2] = {comm.irecv(std::span<std::int32_t>(&a, 1), 0, 1),
                         comm.irecv(std::span<std::int32_t>(&b, 1), 0, 2)};
      comm.waitall(std::span<Request>(reqs));
      EXPECT_EQ(a, 5);
      EXPECT_EQ(b, 6);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, FinalizeSynchronizes) {
  const auto report = run_world(fast_world(3), [](Comm& comm) {
    comm.init();
    comm.finalize();
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, DeadlockedRankStallsFinalize) {
  // One rank stuck in recv; the others reach MPI_Finalize but the job hangs
  // — and the report shows who was stuck where.
  const auto report = run_world(fast_world(3), [](Comm& comm) {
    comm.init();
    if (comm.rank() == 1) {
      std::int32_t v = 0;
      (void)comm.recv(std::span<std::int32_t>(&v, 1), 0, 12345);
    }
    comm.finalize();
  });
  EXPECT_TRUE(report.deadlock);
  EXPECT_NE(report.deadlock_info.find("rank 1 in MPI_Recv"), std::string::npos);
  EXPECT_NE(report.deadlock_info.find("MPI_Finalize"), std::string::npos);
}

TEST(SimMpi, TryRecvNonBlocking) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::int32_t v = 0;
      EXPECT_FALSE(comm.world().try_recv(0, 1, 0, std::as_writable_bytes(std::span<std::int32_t>(&v, 1)))
                       .has_value());
      comm.barrier();  // rank 1 sends before the barrier
      comm.barrier();
      EXPECT_TRUE(comm.world().try_recv(0, 1, 0, std::as_writable_bytes(std::span<std::int32_t>(&v, 1)))
                      .has_value());
      EXPECT_EQ(v, 55);
    } else {
      comm.barrier();
      comm.send_value(std::int32_t{55}, 0, 0);
      comm.barrier();
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, ManyRanksStress) {
  // Ring pass with 16 ranks, several laps.
  const auto report = run_world(fast_world(16), [](Comm& comm) {
    const int n = comm.size();
    const int rank = comm.rank();
    std::int32_t token = rank;
    for (int lap = 0; lap < 4; ++lap) {
      comm.send_value(token, (rank + 1) % n, lap);
      token = comm.recv_value<std::int32_t>((rank + n - 1) % n, lap);
    }
    EXPECT_EQ(token, (rank + n - 4 % n) % n);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, WorldRejectsNonpositiveRanks) {
  EXPECT_THROW((void)World(WorldConfig{.nranks = 0}), MpiError);
}

TEST(SimMpi, BcastWithInvalidRootThrows) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    double v = 0.0;
    EXPECT_THROW(comm.bcast(std::span<double>(&v, 1), 9), MpiError);
    EXPECT_THROW(comm.bcast(std::span<double>(&v, 1), -1), MpiError);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, ReduceOnBytesThrows) {
  // MPI_BYTE is not reducible; the error must surface at completion.
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    const std::byte in[2] = {};
    std::byte out[2] = {};
    EXPECT_THROW(
        comm.allreduce_bytes(std::span<const std::byte>(in), std::span<std::byte>(out), Dtype::Byte,
                             2, ReduceOp::Sum),
        MpiError);
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpi, CollectiveContributionSizeValidated) {
  const auto report = run_world(fast_world(2), [](Comm& comm) {
    const double in[2] = {1.0, 2.0};
    double out[2] = {};
    // claims count=3 but supplies 2 doubles
    EXPECT_THROW(comm.allreduce_bytes(std::as_bytes(std::span<const double>(in)),
                                      std::as_writable_bytes(std::span<double>(out)), Dtype::F64, 3,
                                      ReduceOp::Sum),
                 MpiError);
  });
  EXPECT_TRUE(report.all_completed());
}

}  // namespace
}  // namespace difftrace::simmpi
