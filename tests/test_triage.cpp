// Triage classification over the actual miniapp faults — the paper's
// "initial triage" claim (§I): one standard data set suffices to route the
// bug to the right deeper-debugging family.
#include "core/triage.hpp"

#include <gtest/gtest.h>

#include "apps/ilcs.hpp"
#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "trace/writer.hpp"

namespace difftrace::core {
namespace {

simmpi::WorldConfig fast_world(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(30'000);
  return config;
}

trace::TraceStore trace_odd_even(apps::FaultSpec fault) {
  apps::OddEvenConfig config;
  config.nranks = 16;
  config.elements_per_rank = 8;
  config.fault = fault;
  auto run = apps::run_traced(fast_world(16),
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); });
  return std::move(run.store);
}

TEST(Triage, CleanRunIsNoAnomaly) {
  const auto normal = trace_odd_even({});
  const auto report = triage(normal, normal, FilterSpec::mpi_all());
  EXPECT_EQ(report.bug_class, BugClass::NoAnomaly);
  EXPECT_EQ(bug_class_name(report.bug_class), "no-anomaly");
}

TEST(Triage, DlBugIsHangFocusedOnRankFive) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::DlBug, 5, -1, 7});
  const auto report = triage(normal, faulty, FilterSpec::mpi_all());
  EXPECT_EQ(report.bug_class, BugClass::Hang);
  EXPECT_EQ(report.focus, (trace::TraceKey{5, 0}));
  ASSERT_FALSE(report.evidence.empty());
  EXPECT_NE(report.render().find("truncated by the watchdog"), std::string::npos);
}

TEST(Triage, SwapBugIsStructuralChangeInRankFive) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::SwapBug, 5, -1, 7});
  const auto report = triage(normal, faulty, FilterSpec::mpi_all());
  EXPECT_EQ(report.bug_class, BugClass::StructuralChange);
  EXPECT_EQ(report.focus, (trace::TraceKey{5, 0}));
  EXPECT_NE(report.render().find("diffNLR(5.0)"), std::string::npos);
}

TEST(Triage, IlcsWrongSizeIsHang) {
  apps::IlcsConfig config;
  config.nranks = 4;
  config.workers = 2;
  config.ncities = 10;
  auto normal_run = apps::run_traced(fast_world(4),
                                     [config](simmpi::Comm& c) { apps::ilcs_rank(c, config); });
  config.fault = apps::FaultSpec{apps::FaultType::WrongCollectiveSize, 2, -1, -1};
  auto faulty_run = apps::run_traced(fast_world(4),
                                     [config](simmpi::Comm& c) { apps::ilcs_rank(c, config); });
  const auto report = triage(normal_run.store, faulty_run.store, FilterSpec::mpi_all());
  EXPECT_EQ(report.bug_class, BugClass::Hang);
}

// Synthetic stores give deterministic coverage of the non-hang classes.
trace::TraceStore make_store(const std::vector<std::vector<std::string>>& traces) {
  trace::TraceStore store;
  for (std::size_t p = 0; p < traces.size(); ++p) {
    trace::TraceWriter writer({static_cast<int>(p), 0});
    for (const auto& name : traces[p])
      writer.record(trace::EventKind::Call, store.registry().intern(name));
    store.absorb(writer);
  }
  return store;
}

TEST(Triage, PureCountChangeIsFrequencyChange) {
  const auto normal = make_store({{"a", "b", "a", "b"}, {"c", "c"}});
  const auto faulty = make_store({{"a", "b", "a", "b", "a", "b"}, {"c", "c"}});
  const auto report = triage(normal, faulty, FilterSpec::everything());
  EXPECT_EQ(report.bug_class, BugClass::FrequencyChange);
  EXPECT_EQ(report.focus, (trace::TraceKey{0, 0}));
}

TEST(Triage, VanishedCallIsStructural) {
  const auto normal = make_store({{"init", "lock", "work", "unlock", "fini"}});
  const auto faulty = make_store({{"init", "work", "fini"}});
  const auto report = triage(normal, faulty, FilterSpec::everything());
  EXPECT_EQ(report.bug_class, BugClass::StructuralChange);
  EXPECT_NE(report.render().find("vanished"), std::string::npos);
  EXPECT_NE(report.render().find("lock"), std::string::npos);
}

TEST(Triage, AppearedCallIsStructural) {
  const auto normal = make_store({{"init", "fini"}});
  const auto faulty = make_store({{"init", "retry", "fini"}});
  const auto report = triage(normal, faulty, FilterSpec::everything());
  EXPECT_EQ(report.bug_class, BugClass::StructuralChange);
  EXPECT_NE(report.render().find("appeared"), std::string::npos);
}

TEST(Triage, EmptyIntersectionReportsNoAnomaly) {
  const auto a = make_store({});
  const auto report = triage(a, a, FilterSpec::everything());
  EXPECT_EQ(report.bug_class, BugClass::NoAnomaly);
  EXPECT_NE(report.render().find("no common traces"), std::string::npos);
}

}  // namespace
}  // namespace difftrace::core
