// Lint fixture: seeded `obs-sink-discipline` violations. Obs-layer code
// writing to ambient process streams instead of its explicit ostream sink.
// The directory name ("obs/") is what puts this file in the rule's scope.
// Never compiled — scanned by lint_selftest only.
#include <cstdio>
#include <iostream>

namespace difftrace::fixture {

void export_warn(int dropped) {
  std::cerr << "export dropped " << dropped << " event(s)\n";  // seeded violation
}

void export_warn_legacy(int dropped) {
  fprintf(stderr, "export dropped %d event(s)\n", dropped);  // seeded violation
}

}  // namespace difftrace::fixture
