// Lint fixture: seeded `raw-mutex` violations — a raw std primitive and a
// util::Mutex member with no DT_GUARDED_BY anywhere in the file. Never
// compiled (util::Mutex is only name-checked by the linter).
#include <mutex>

namespace difftrace::util {
class Mutex {};
}  // namespace difftrace::util

namespace difftrace::fixture {
namespace util = difftrace::util;

class Counter {
 public:
  void bump();

 private:
  std::mutex mu_;  // seeded violation: raw std primitive
  util::Mutex annotated_mu_;  // seeded violation: no DT_GUARDED_BY in file
  long count_ = 0;
};

}  // namespace difftrace::fixture
