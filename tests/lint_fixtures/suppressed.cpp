// Lint fixture: one violation per rule, each suppressed with a same-line
// NOLINT-DT marker carrying a reason. Must lint clean — this is the
// suppression-mechanism regression test. Never compiled.
#include <cstdlib>
#include <cstdint>
#include <ctime>
#include <functional>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace difftrace::util {
class Mutex {};
}  // namespace difftrace::util

namespace difftrace::fixture_suppressed {
namespace util = difftrace::util;

void report(int percent) {
  std::cout << percent << "\n";  // NOLINT-DT(stream-discipline): fixture exercising suppression
}

struct Decoder {
  std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& in);
};
std::vector<std::uint32_t> load(Decoder* decoder, const std::vector<std::uint8_t>& bytes) {
  return decoder->decode(bytes);  // NOLINT-DT(bounded-decode): fixture exercising suppression
}

unsigned seed() {
  return static_cast<unsigned>(time(nullptr));  // NOLINT-DT(determinism): fixture exercising suppression
}

int* leak() {
  return new int{3};  // NOLINT-DT(naked-new): fixture exercising suppression
}

struct FakePool {
  void post(std::string scope, std::function<void()> fn);
};
void enqueue(FakePool& pool) {
  pool.post("fixture", [] {
    throw std::runtime_error("suppressed");  // NOLINT-DT(task-throw): fixture exercising suppression
  });
}

class Counter {
 private:
  std::mutex raw_mu_;  // NOLINT-DT(raw-mutex): fixture exercising suppression
  util::Mutex mu_;  // NOLINT-DT(raw-mutex): fixture exercising suppression (no DT_GUARDED_BY here)
  long count_ = 0;
};

namespace simfault::hooks {
bool active();
}  // namespace simfault::hooks
bool probe_injector() {
  return simfault::hooks::active();  // NOLINT-DT(sim-only-injection): fixture exercising suppression
}

}  // namespace difftrace::fixture_suppressed
