// Lint fixture: seeded `sim-only-injection` violation. A simfault hook
// call compiled into pipeline-side code (this path is outside the
// simmpi/simomp/apps perimeter). Never compiled.
#include <cstddef>

namespace difftrace::simfault::hooks {
bool active();
int delay_ticks(int rank, int op_index);
}  // namespace difftrace::simfault::hooks

namespace difftrace::fixture {

std::size_t decode_block(int rank, int op) {
  if (simfault::hooks::active()) {  // seeded violation
    return static_cast<std::size_t>(simfault::hooks::delay_ticks(rank, op));  // seeded violation
  }
  return 0;
}

}  // namespace difftrace::fixture
