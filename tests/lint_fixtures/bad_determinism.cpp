// Lint fixture: seeded `determinism` violations. Wall clock and ambient
// randomness in pipeline code. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

namespace difftrace::fixture {

unsigned jitter_seed() {
  return static_cast<unsigned>(time(nullptr));  // seeded violation
}

int pick_shard(int nshards) {
  return rand() % nshards;  // seeded violation
}

unsigned hardware_seed() {
  std::random_device rd;  // seeded violation
  return rd();
}

}  // namespace difftrace::fixture
