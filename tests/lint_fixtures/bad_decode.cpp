// Lint fixture: seeded `bounded-decode` violation. Strict decoder entry
// point driven outside the codec layer. Never compiled.
#include <cstdint>
#include <vector>

namespace difftrace::fixture {

struct Decoder {
  std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& in);
  std::vector<std::uint32_t> decode_prefix(const std::vector<std::uint8_t>& in, std::size_t cap);
};

std::vector<std::uint32_t> load(Decoder* decoder, const std::vector<std::uint8_t>& bytes) {
  return decoder->decode(bytes);  // seeded violation
}

}  // namespace difftrace::fixture
