// Seeded violations for serve-protocol-discipline: ambient process-stream
// writes inside a src/serve/-scoped file. The daemon speaks a framed
// line-delimited protocol; results belong in Response::output, chatter in
// Response::chatter or the injected log sink, never on the process streams.
#include <cstdio>
#include <iostream>

namespace difftrace::serve {

inline void announce_bad() {
  std::cerr << "daemon chatter on stderr\n";
}

inline void log_bad(int code) {
  fprintf(stderr, "exit %d\n", code);
}

}  // namespace difftrace::serve
