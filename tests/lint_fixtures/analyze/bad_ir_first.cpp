// Lint fixture: seeded `ir-first-analysis` violations. Lives under an
// analyze/ directory so the path-scoped rule applies; the real exemption
// (replay_fallback.cpp) is pinned by the tree lint staying clean. Also
// carries the rule's near-misses and a suppressed call. Never compiled.
#include <cstdint>
#include <vector>

namespace difftrace::fixture_analyze {

struct NlrItem {};
struct LoopTable {};
std::vector<std::uint32_t> expand_nlr(const std::vector<NlrItem>&, const LoopTable&);  // NOLINT-DT(ir-first-analysis): fixture declaration, not a call
std::vector<std::uint32_t> expand_nlr_prefix(const std::vector<NlrItem>& items,
                                             const LoopTable& loops, std::size_t cap);

std::vector<std::uint32_t> walk_everything(const std::vector<NlrItem>& items,
                                           const LoopTable& loops) {
  return expand_nlr(items, loops);  // seeded violation: full expansion in analysis code
}

std::vector<std::uint32_t> walk_qualified(const std::vector<NlrItem>& items,
                                          const LoopTable& loops) {
  namespace core = difftrace::fixture_analyze;
  return core::expand_nlr(items, loops);  // seeded violation: qualified call is still a call
}

// Near-misses: a bounded sibling entry point, and prose naming the banned
// token. "call expand_nlr(items, loops)" in a string is not a call.
std::vector<std::uint32_t> walk_bounded(const std::vector<NlrItem>& items,
                                        const LoopTable& loops) {
  return expand_nlr_prefix(items, loops, 64);
}
const char* advice() { return "never call expand_nlr(items, loops) from a checker"; }

std::vector<std::uint32_t> walk_sanctioned(const std::vector<NlrItem>& items,
                                           const LoopTable& loops) {
  return expand_nlr(items, loops);  // NOLINT-DT(ir-first-analysis): fixture exercising suppression
}

}  // namespace difftrace::fixture_analyze
