// Lint fixture: seeded `naked-new` violations. Never compiled.
namespace difftrace::fixture {

struct Node {
  int value = 0;
};

Node* make_node() {
  return new Node{};  // seeded violation
}

void drop_node(Node* node) {
  delete node;  // seeded violation
}

}  // namespace difftrace::fixture
