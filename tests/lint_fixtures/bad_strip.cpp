// Near-miss fixtures for the comment/string stripper itself: each construct
// below defeated an earlier stripper, hiding or shifting the pinned findings.
// The selftest pins exact lines, so a stripper regression reappears here.
#include <iostream>

namespace fixstrip {

// MACRO_R is an identifier followed by an ordinary string literal — NOT a
// raw-string opener. A stripper that matched `R"text(` here swallowed the
// rest of the file hunting for a `)text"` closer that never comes, hiding
// every finding below.
#define FIXSTRIP_TAG(x) x
inline const char* tag = FIXSTRIP_TAG(MACRO_R"text(");

// Digit separators: a lone tick after a number once opened a "char literal"
// that ate the rest of the line, hiding the violation sitting beside it.
inline void sep() { int n = 1'000; std::cout << n; }

// A backslash-newline inside a string literal spans two physical lines; a
// stripper that dropped the line break made every finding below drift up a
// line, off its pin.
inline const char* cont = "first half \
second half";
inline void after() { std::cout << "pinned"; }

}  // namespace fixstrip
