// Lint fixture: seeded `task-throw` violation — a throw that can escape a
// Pool task lambda (workers have no handler). Never compiled.
#include <functional>
#include <stdexcept>
#include <string>

namespace difftrace::fixture {

struct FakePool {
  void post(std::string scope, std::function<void()> fn);
};

void enqueue(FakePool& pool, bool fail) {
  pool.post("fixture", [fail] {
    if (fail) throw std::runtime_error("escapes the worker");  // seeded violation
  });
}

}  // namespace difftrace::fixture
