// Lint fixture: a file full of NEAR-misses that must all pass. Guards the
// linter against false positives: every construct here is the sanctioned
// sibling of something a rule bans. Never compiled.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#define DT_GUARDED_BY(x)

namespace difftrace::util {
class Mutex {};
}  // namespace difftrace::util

namespace difftrace::fixture_clean {
namespace util = difftrace::util;

// stream-discipline near-misses: snprintf formats into a buffer; stderr is
// the diagnostics channel, not stdout; quoted "std::cout" is prose.
void format_into(char* buf, std::size_t n, int v) {
  std::snprintf(buf, n, "%d", v);
  std::fprintf(stderr, "diag only, never printf to stdout\n");
  const std::string doc = "call std::cout << x; printf(\"%d\"); from cli/ only";
  (void)doc;
}

// bounded-decode near-misses: the bounded prefix entry point and the
// tolerant store wrapper are exactly what the rule steers callers to.
struct Decoder {
  std::vector<std::uint32_t> decode_prefix(const std::vector<std::uint8_t>& in, std::size_t cap);
};
struct Store {
  std::vector<std::uint32_t> decode_tolerant(int key);
};
std::vector<std::uint32_t> load(Decoder* decoder, Store& store,
                                const std::vector<std::uint8_t>& bytes) {
  auto events = decoder->decode_prefix(bytes, bytes.size());
  auto more = store.decode_tolerant(0);
  events.insert(events.end(), more.begin(), more.end());
  return events;
}

// determinism near-misses: steady_clock is the sanctioned clock; words
// containing time(/rand( as a suffix are not the libc calls; a comment
// saying rand() is prose.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - start)
          .count());
}
std::uint64_t wall_time(std::uint64_t ticks) { return ticks; }  // rand() and time() in prose are fine
std::uint64_t operand(std::uint64_t x) { return wall_time(x); }

// naked-new near-misses: make_unique/make_shared own; `= delete` is a
// deleted member, not a deallocation.
class Owner {
 public:
  Owner() : data_(std::make_unique<int>(7)), shared_(std::make_shared<int>(9)) {}
  Owner(const Owner&) = delete;
  Owner& operator=(const Owner&) = delete;

 private:
  std::unique_ptr<int> data_;
  std::shared_ptr<int> shared_;
};

// task-throw near-miss: the throw is inside a try within the lambda, so it
// cannot escape the worker — the Graph / parallel_for pattern.
struct FakePool {
  void post(std::string scope, std::function<void()> fn);
};
void enqueue(FakePool& pool) {
  pool.post("fixture", [] {
    try {
      throw std::runtime_error("caught before the worker sees it");
    } catch (...) {
    }
  });
}

// sim-only-injection near-misses: arming a plan through the control-plane
// surface (InjectorSession / parse_plan) is legal anywhere; only the
// simfault::hooks:: decision surface is perimeter-bound. Prose naming
// simfault::hooks::on_message is a comment, not a call.
namespace simfault {
struct FaultPlan {};
struct InjectorSession {
  explicit InjectorSession(const FaultPlan& plan);
};
FaultPlan parse_plan(const std::string& spec);
}  // namespace simfault
void arm_for_collection() {
  const simfault::InjectorSession session(simfault::parse_plan("drop@rank=1"));
}

// raw-mutex near-miss: a util::Mutex member tied to data via DT_GUARDED_BY.
class Counter {
 public:
  void bump();

 private:
  util::Mutex mu_;
  long count_ DT_GUARDED_BY(mu_) = 0;
};

}  // namespace difftrace::fixture_clean
