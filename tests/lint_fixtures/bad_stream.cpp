// Lint fixture: seeded `stream-discipline` violation. Library code writing
// to process stdout. Never compiled — scanned by lint_selftest only.
#include <cstdio>
#include <iostream>

namespace difftrace::fixture {

void report_progress(int percent) {
  std::cout << "progress: " << percent << "%\n";  // seeded violation
}

void report_legacy(int percent) {
  printf("progress: %d%%\n", percent);  // seeded violation
}

}  // namespace difftrace::fixture
