// Observability layer: metrics registry, span nesting/aggregation, run
// manifest JSON round-trip, and the self-trace capstone (difftrace's own
// pipeline phases as an analyzable v2 archive).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/filter.hpp"
#include "core/nlr.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/selftrace.hpp"
#include "obs/span.hpp"
#include "trace/store.hpp"
#include "util/json.hpp"

namespace difftrace::obs {
namespace {

// --- counters ----------------------------------------------------------------

TEST(Metrics, CounterRegistersOnFirstUseAndAccumulates) {
  MetricsRegistry::instance().reset();
  auto& c = counter("test.counter_basic");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same counter.
  EXPECT_EQ(&counter("test.counter_basic"), &c);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  auto& c = counter("test.counter_reset");
  c.add(7);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(3);  // the cached reference still works after reset
  EXPECT_EQ(counter("test.counter_reset").value(), 3u);
}

TEST(Metrics, NonzeroOnlySnapshotDropsIdleCounters) {
  MetricsRegistry::instance().reset();
  counter("test.idle");  // registered, never incremented
  counter("test.busy").add(5);
  const auto all = MetricsRegistry::instance().counters(false);
  const auto nonzero = MetricsRegistry::instance().counters(true);
  const auto has = [](const std::vector<CounterSample>& v, std::string_view name) {
    for (const auto& s : v)
      if (s.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has(all, "test.idle"));
  EXPECT_FALSE(has(nonzero, "test.idle"));
  EXPECT_TRUE(has(nonzero, "test.busy"));
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  MetricsRegistry::instance().reset();
  auto& c = counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      // Mix registration (first-use lookup) with hot-path adds so the
      // registry mutex and the relaxed counter path race under TSan.
      auto& mine = counter("test.concurrent");
      for (int i = 0; i < kAdds; ++i) mine.add();
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

// --- histograms --------------------------------------------------------------

TEST(Metrics, HistogramBucketEdges) {
  // Bucket 0 holds exactly 0; bucket i (i >= 1) covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower_bound(3), 4u);
  EXPECT_EQ(Histogram::bucket_lower_bound(64), std::uint64_t{1} << 63);

  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 10u);
  EXPECT_EQ(snap.buckets[0], 1u);  // {0}
  EXPECT_EQ(snap.buckets[1], 1u);  // {1}
  EXPECT_EQ(snap.buckets[2], 2u);  // {2, 3}
  EXPECT_EQ(snap.buckets[3], 1u);  // {4}
}

// --- spans -------------------------------------------------------------------

TEST(Spans, NestingBuildsPathsAndAggregatesRepeats) {
  PhaseTable::instance().reset();
  {
    Span outer("outer");
    for (int i = 0; i < 3; ++i) {
      Span inner("inner");
    }
  }
  const auto phases = PhaseTable::instance().snapshot();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].path, "outer");
  EXPECT_EQ(phases[0].name, "outer");
  EXPECT_EQ(phases[0].depth, 0u);
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].path, "outer/inner");
  EXPECT_EQ(phases[1].name, "inner");
  EXPECT_EQ(phases[1].depth, 1u);
  EXPECT_EQ(phases[1].count, 3u);
  // A span's wall time contains its children's.
  EXPECT_GE(phases[0].wall_ns, phases[1].wall_ns);
}

TEST(Spans, WorkerThreadsRootTheirOwnTrees) {
  PhaseTable::instance().reset();
  {
    Span main_span("main");
    std::thread worker([] { Span w("worker"); });
    worker.join();
  }
  const auto phases = PhaseTable::instance().snapshot();
  ASSERT_EQ(phases.size(), 2u);
  // The worker's span is not nested under "main": span stacks are
  // thread-local, so it roots its own depth-0 tree.
  EXPECT_EQ(phases[0].path, "main");
  EXPECT_EQ(phases[1].path, "worker");
  EXPECT_EQ(phases[1].depth, 0u);
}

// --- manifest ----------------------------------------------------------------

RunManifest sample_manifest() {
  RunManifest m;
  m.command = {"rank", "a.dtrc", "b.dtrc"};
  m.exit_code = 0;
  m.wall_ns = 1000;
  m.cpu_ns = 900;
  m.peak_rss_kb = 12345;
  m.inputs.push_back({"a.dtrc", 1448, 0xc79fa2bdu, true});
  m.inputs.push_back({"missing.dtrc", 0, 0, false});
  m.phases.push_back({"rank", "rank", 0, 1, 1000, 900});
  m.phases.push_back({"rank/load", "load", 1, 1, 300, 280});
  m.phases.push_back({"rank/sweep", "sweep", 1, 1, 680, 600});
  m.counters.push_back({"nlr.tokens_in", 168});
  m.jobs = 4;
  m.cache_dir = "/tmp/cache";
  m.cache_hits = 3;
  m.cache_misses = 1;
  m.check_engine = "abstract";
  m.summary_cache_hits = 7;
  m.summary_cache_misses = 2;
  m.self_trace = "run.selftrace.dtrc";
  HistogramSample h;
  h.name = "trace.blob_events";
  h.data.count = 2;
  h.data.sum = 100;
  h.data.buckets[Histogram::bucket_index(28)] = 1;
  h.data.buckets[Histogram::bucket_index(72)] = 1;
  m.histograms.push_back(h);
  return m;
}

TEST(Manifest, JsonRoundTripPreservesEveryField) {
  const auto m = sample_manifest();
  const auto parsed = RunManifest::from_json_text(m.to_json());

  EXPECT_EQ(parsed.manifest_version, kManifestVersion);
  EXPECT_EQ(parsed.tool_version, m.tool_version);
  EXPECT_EQ(parsed.command, m.command);
  EXPECT_EQ(parsed.exit_code, m.exit_code);
  EXPECT_EQ(parsed.wall_ns, m.wall_ns);
  EXPECT_EQ(parsed.cpu_ns, m.cpu_ns);
  EXPECT_EQ(parsed.peak_rss_kb, m.peak_rss_kb);

  ASSERT_EQ(parsed.inputs.size(), 2u);
  EXPECT_EQ(parsed.inputs[0].path, "a.dtrc");
  EXPECT_EQ(parsed.inputs[0].bytes, 1448u);
  EXPECT_EQ(parsed.inputs[0].crc32, 0xc79fa2bdu);
  EXPECT_TRUE(parsed.inputs[0].ok);
  EXPECT_FALSE(parsed.inputs[1].ok);

  ASSERT_EQ(parsed.phases.size(), 3u);
  EXPECT_EQ(parsed.phases[1].path, "rank/load");
  EXPECT_EQ(parsed.phases[1].name, "load");
  EXPECT_EQ(parsed.phases[1].depth, 1u);
  EXPECT_EQ(parsed.phases[1].wall_ns, 300u);
  EXPECT_EQ(parsed.phases[1].cpu_ns, 280u);

  ASSERT_EQ(parsed.counters.size(), 1u);
  EXPECT_EQ(parsed.counters[0].name, "nlr.tokens_in");
  EXPECT_EQ(parsed.counters[0].value, 168u);

  // Post-release additive fields survive the round trip too.
  EXPECT_EQ(parsed.jobs, 4u);
  EXPECT_EQ(parsed.cache_dir, "/tmp/cache");
  EXPECT_EQ(parsed.cache_hits, 3u);
  EXPECT_EQ(parsed.cache_misses, 1u);
  EXPECT_EQ(parsed.check_engine, "abstract");
  EXPECT_EQ(parsed.summary_cache_hits, 7u);
  EXPECT_EQ(parsed.summary_cache_misses, 2u);
  EXPECT_EQ(parsed.self_trace, "run.selftrace.dtrc");

  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].data.count, 2u);
  EXPECT_EQ(parsed.histograms[0].data.sum, 100u);
  EXPECT_EQ(parsed.histograms[0].data.buckets[Histogram::bucket_index(28)], 1u);
  EXPECT_EQ(parsed.histograms[0].data.buckets[Histogram::bucket_index(72)], 1u);
}

TEST(Manifest, PhaseCoverageSumsRootsDirectChildren) {
  const auto m = sample_manifest();
  // (300 + 680) / 1000
  EXPECT_NEAR(m.phase_coverage(), 0.98, 1e-9);

  RunManifest trivial;
  trivial.phases.push_back({"info", "info", 0, 1, 500, 500});
  EXPECT_DOUBLE_EQ(trivial.phase_coverage(), 1.0);  // no children to judge
}

TEST(Manifest, RejectsWrongSchemaVersion) {
  EXPECT_THROW((void)RunManifest::from_json_text(R"({"manifest_version": 99})"),
               std::runtime_error);
  EXPECT_THROW((void)RunManifest::from_json_text("not json"), std::runtime_error);
}

TEST(Manifest, CollectSnapshotsPhasesCountersAndRusage) {
  MetricsRegistry::instance().reset();
  PhaseTable::instance().reset();
  counter("test.manifest_counter").add(9);
  { Span root("unit"); }
  const auto m = collect_manifest({"unit"}, {"/nonexistent/input.dtrc"}, 3);
  EXPECT_EQ(m.exit_code, 3);
  EXPECT_GT(m.wall_ns, 0u);  // taken from the "unit" root span
  EXPECT_GT(m.peak_rss_kb, 0u);
  ASSERT_EQ(m.inputs.size(), 1u);
  EXPECT_FALSE(m.inputs[0].ok);
  bool found = false;
  for (const auto& c : m.counters)
    if (c.name == "test.manifest_counter" && c.value == 9) found = true;
  EXPECT_TRUE(found);
  // render() is exercised for crash-freedom; content is covered by the CLI
  // stats test.
  EXPECT_NE(m.render().find("phase coverage"), std::string::npos);
}

// --- self-trace --------------------------------------------------------------

TEST(SelfTraceTest, RecordsSpansAsDecodableArchive) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("difftrace_obs_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = (dir / "self.dtrc").string();

  PhaseTable::instance().reset();
  SelfTrace::instance().start();
  ASSERT_TRUE(SelfTrace::instance().active());
  {
    Span outer("phase_outer");
    for (int i = 0; i < 4; ++i) {
      Span inner("phase_inner");
    }
  }
  const auto store = SelfTrace::instance().stop();
  EXPECT_FALSE(SelfTrace::instance().active());
  store.save(path);

  // The archive is a genuine v2 store: loads strictly, decodes, and its NLR
  // contains the phase names with the repeated inner phase folded to a loop.
  const auto loaded = trace::TraceStore::load(path);
  ASSERT_EQ(loaded.size(), 1u);
  const auto key = loaded.keys().front();
  const auto events = loaded.decode(key);
  EXPECT_EQ(events.size(), 10u);  // 5 spans, call+return each

  core::TokenTable tokens;
  core::LoopTable loops;
  const auto filter = core::FilterSpec::everything().drop_returns(false);
  const auto program =
      core::build_nlr(tokens.intern_all(filter.apply(loaded, key)), loops, {});
  const auto text = core::program_to_string(program, tokens);
  EXPECT_NE(text.find("phase_outer"), std::string::npos);
  EXPECT_GE(loops.size(), 1u);  // the 4 inner spans folded into a loop

  std::filesystem::remove_all(dir);
}

TEST(SelfTraceTest, StartTwiceThrowsAndStopRequiresActive) {
  if (SelfTrace::instance().active()) (void)SelfTrace::instance().stop();
  EXPECT_THROW((void)SelfTrace::instance().stop(), std::logic_error);
  SelfTrace::instance().start();
  EXPECT_THROW(SelfTrace::instance().start(), std::logic_error);
  (void)SelfTrace::instance().stop();
}

}  // namespace
}  // namespace difftrace::obs
