#include "core/nlr.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

struct Fixture {
  TokenTable tokens;
  LoopTable loops;

  std::vector<TokenId> ids(const std::vector<std::string>& names) {
    std::vector<TokenId> out;
    for (const auto& n : names) out.push_back(tokens.intern(n));
    return out;
  }

  NlrProgram program_of(const std::vector<std::string>& names) {
    return build_nlr(ids(names), loops);
  }

  std::vector<std::string> labels(const NlrProgram& program) {
    std::vector<std::string> out;
    for (const auto& item : program) out.push_back(item_label(item, tokens));
    return out;
  }
};

TEST(TokenTable, InternsDense) {
  TokenTable t;
  EXPECT_EQ(t.intern("a"), 0u);
  EXPECT_EQ(t.intern("b"), 1u);
  EXPECT_EQ(t.intern("a"), 0u);
  EXPECT_EQ(t.name(1), "b");
  EXPECT_FALSE(t.find("c").has_value());
  EXPECT_THROW((void)t.name(9), std::out_of_range);
}

TEST(LoopTable, InternsBodiesOnce) {
  LoopTable lt;
  const NlrBody body = {NlrItem::token(1), NlrItem::token(2)};
  const auto id = lt.intern(body);
  EXPECT_EQ(lt.intern(body), id);
  EXPECT_EQ(lt.body(id), body);
  EXPECT_EQ(lt.size(), 1u);
  EXPECT_THROW((void)lt.body(7), std::out_of_range);
  EXPECT_THROW((void)lt.intern({}), std::invalid_argument);
}

TEST(Nlr, SimplePairLoop) {
  Fixture f;
  const auto program = build_nlr(f.ids({"s", "r", "s", "r", "s", "r", "s", "r"}), f.loops);
  EXPECT_EQ(f.labels(program), (std::vector<std::string>{"L0^4"}));
  EXPECT_EQ(f.loops.body(0).size(), 2u);
}

TEST(Nlr, PaperTableThreeShape) {
  // Table III: init/rank/size + [Send,Recv]^2 + finalize for T0.
  Fixture f;
  const auto program = build_nlr(
      f.ids({"MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Send", "MPI_Recv", "MPI_Send",
             "MPI_Recv", "MPI_Finalize"}),
      f.loops);
  EXPECT_EQ(f.labels(program), (std::vector<std::string>{"MPI_Init", "MPI_Comm_rank",
                                                         "MPI_Comm_size", "L0^2", "MPI_Finalize"}));
}

TEST(Nlr, OppositePhaseBodiesGetDistinctIds) {
  // Table III: even traces fold [Send,Recv] (L0), odd traces [Recv,Send] (L1).
  Fixture f;
  const auto even = build_nlr(f.ids({"s", "r", "s", "r"}), f.loops);
  const auto odd = build_nlr(f.ids({"r", "s", "r", "s"}), f.loops);
  ASSERT_EQ(even.size(), 1u);
  ASSERT_EQ(odd.size(), 1u);
  EXPECT_NE(even[0].id, odd[0].id);
  EXPECT_EQ(f.loops.size(), 2u);
}

TEST(Nlr, SameBodyAcrossTracesSharesId) {
  // The swapBug signature: a faulty trace running [r,s]^k then [s,r]^m must
  // reuse the L-ids that other traces' formations created.
  Fixture f;
  const auto t0 = build_nlr(f.ids({"s", "r", "s", "r"}), f.loops);         // L0 = [s,r]
  const auto t5 = build_nlr(f.ids({"r", "s", "r", "s", "r", "s"}), f.loops);  // L1 = [r,s]
  std::vector<std::string> faulty_tokens;
  for (int i = 0; i < 7; ++i) {
    faulty_tokens.push_back("r");
    faulty_tokens.push_back("s");
  }
  for (int i = 0; i < 9; ++i) {
    faulty_tokens.push_back("s");
    faulty_tokens.push_back("r");
  }
  const auto faulty = build_nlr(f.ids(faulty_tokens), f.loops);
  ASSERT_EQ(faulty.size(), 2u);
  EXPECT_EQ(item_label(faulty[0], f.tokens), "L" + std::to_string(t5[0].id) + "^7");
  EXPECT_EQ(item_label(faulty[1], f.tokens), "L" + std::to_string(t0[0].id) + "^9");
}

TEST(Nlr, TruncatedTraceKeepsTrailingPartial) {
  // The dlBug signature: loop runs 7 times then a lone Recv where the rank
  // got stuck (Figure 6).
  Fixture f;
  std::vector<std::string> names;
  for (int i = 0; i < 7; ++i) {
    names.push_back("r");
    names.push_back("s");
  }
  names.push_back("r");
  const auto program = build_nlr(f.ids(names), f.loops);
  EXPECT_EQ(f.labels(program), (std::vector<std::string>{"L0^7", "r"}));
}

TEST(Nlr, NestedLoops) {
  // (a b b)^3 => outer loop whose body contains the inner (b)^2 loop.
  Fixture f;
  std::vector<std::string> names;
  for (int i = 0; i < 3; ++i) {
    names.push_back("a");
    names.push_back("b");
    names.push_back("b");
  }
  const auto program = build_nlr(f.ids(names), f.loops);
  ASSERT_EQ(program.size(), 1u);
  EXPECT_TRUE(program[0].is_loop());
  EXPECT_EQ(program[0].count, 3u);
  const auto& body = f.loops.body(program[0].id);
  ASSERT_EQ(body.size(), 2u);
  EXPECT_FALSE(body[0].is_loop());
  EXPECT_TRUE(body[1].is_loop());
  EXPECT_EQ(body[1].count, 2u);
}

TEST(Nlr, TripleNestedLoops) {
  // ((a b b)^2 c)^2: three levels — inner (b)^2, middle [a, L(b)^2]^2,
  // outer [L(mid)^2, c]^2.
  Fixture f;
  std::vector<std::string> names;
  for (int outer = 0; outer < 2; ++outer) {
    for (int mid = 0; mid < 2; ++mid) {
      names.push_back("a");
      names.push_back("b");
      names.push_back("b");
    }
    names.push_back("c");
  }
  const auto program = build_nlr(f.ids(names), f.loops);
  ASSERT_EQ(program.size(), 1u);
  EXPECT_TRUE(program[0].is_loop());
  EXPECT_EQ(program[0].count, 2u);
  // Lossless at full depth.
  EXPECT_EQ(expand_nlr(program, f.loops), f.ids(names));
  // The outer body contains a loop whose body contains a loop.
  const auto& outer_body = f.loops.body(program[0].id);
  bool has_nested_loop = false;
  for (const auto& item : outer_body) {
    if (!item.is_loop()) continue;
    for (const auto& inner : f.loops.body(item.id))
      if (inner.is_loop()) has_nested_loop = true;
  }
  EXPECT_TRUE(has_nested_loop);
}

TEST(Nlr, AdjacentLoopMergeAddsCounts) {
  Fixture f;
  NlrBuilder builder(f.loops, NlrConfig{});
  // a a a a  => L^4 via forming L^2 then extending twice.
  const auto a = f.tokens.intern("a");
  for (int i = 0; i < 4; ++i) builder.push(a);
  const auto& program = builder.program();
  ASSERT_EQ(program.size(), 1u);
  EXPECT_EQ(program[0].count, 4u);
}

TEST(Nlr, BlockLongerThanKNotFolded) {
  // Body length 3 with K=2 must not be recognized.
  Fixture f;
  NlrConfig config;
  config.k = 2;
  const auto program = build_nlr(f.ids({"a", "b", "c", "a", "b", "c"}), f.loops, config);
  EXPECT_EQ(program.size(), 6u);
  EXPECT_EQ(f.loops.size(), 0u);
}

TEST(Nlr, MinRepsThree) {
  Fixture f;
  NlrConfig config;
  config.min_reps = 3;
  const auto two = build_nlr(f.ids({"a", "b", "a", "b"}), f.loops, config);
  EXPECT_EQ(two.size(), 4u);  // two occurrences are not enough
  const auto three = build_nlr(f.ids({"a", "b", "a", "b", "a", "b"}), f.loops, config);
  EXPECT_EQ(three.size(), 1u);
  EXPECT_EQ(three[0].count, 3u);
}

TEST(Nlr, KnownBodyFoldWrapsSingleOccurrence) {
  Fixture f;
  NlrConfig config;
  config.fold_known_bodies = true;
  (void)build_nlr(f.ids({"x", "y", "x", "y"}), f.loops, config);  // teaches [x,y]
  const auto single = build_nlr(f.ids({"q", "x", "y", "q"}), f.loops, config);
  ASSERT_EQ(single.size(), 3u);
  EXPECT_TRUE(single[1].is_loop());
  EXPECT_EQ(single[1].count, 1u);
}

TEST(Nlr, ShapeIdsIgnoreNestedCounts) {
  // (a b b)^2 and (a b b b)^2 produce different loop ids (inner counts 2 vs
  // 3) but the SAME shape: [a, L(b)^*] — the property that keeps FCA
  // attributes stable across asynchronous runs.
  Fixture f;
  const auto p1 = f.program_of({"a", "b", "b", "a", "b", "b"});
  const auto p2 = f.program_of({"a", "b", "b", "b", "a", "b", "b", "b"});
  ASSERT_EQ(p1.size(), 1u);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_NE(p1[0].id, p2[0].id);
  EXPECT_EQ(f.loops.shape_id(p1[0].id), f.loops.shape_id(p2[0].id));
}

TEST(Nlr, ShapeIdsDistinguishStructure) {
  Fixture f;
  const auto p1 = f.program_of({"a", "b", "a", "b"});
  const auto p2 = f.program_of({"b", "a", "b", "a"});
  EXPECT_NE(f.loops.shape_id(p1[0].id), f.loops.shape_id(p2[0].id));
  EXPECT_THROW((void)f.loops.shape_id(99), std::out_of_range);
}

TEST(Nlr, ConfigValidation) {
  Fixture f;
  EXPECT_THROW(NlrBuilder(f.loops, NlrConfig{.k = 0}), std::invalid_argument);
  EXPECT_THROW(NlrBuilder(f.loops, NlrConfig{.min_reps = 1}), std::invalid_argument);
}

TEST(Nlr, EmptyInput) {
  Fixture f;
  EXPECT_TRUE(build_nlr({}, f.loops).empty());
}

TEST(Nlr, ItemLabels) {
  Fixture f;
  const auto a = f.tokens.intern("MPI_Send");
  EXPECT_EQ(item_label(NlrItem::token(a), f.tokens), "MPI_Send");
  EXPECT_EQ(item_attr_label(NlrItem::token(a), f.tokens), "MPI_Send");
  EXPECT_EQ(item_label(NlrItem::loop(3, 16), f.tokens), "L3^16");
  EXPECT_EQ(item_attr_label(NlrItem::loop(3, 16), f.tokens), "L3");
}

// --- property: expansion is lossless ---------------------------------------------

struct LosslessParam {
  std::size_t k;
  std::size_t min_reps;
  bool fold_known;
  std::size_t alphabet;
  std::size_t length;
  std::uint64_t seed;
};

class NlrLossless : public ::testing::TestWithParam<LosslessParam> {};

TEST_P(NlrLossless, ExpandReproducesInput) {
  const auto p = GetParam();
  util::Xoshiro256 rng(p.seed);
  LoopTable loops;
  NlrConfig config{.k = p.k, .min_reps = p.min_reps, .fold_known_bodies = p.fold_known};

  // Loopy random input: random walk over phase blocks.
  std::vector<TokenId> input;
  while (input.size() < p.length) {
    const auto body_len = 1 + rng.below(4);
    const auto reps = 1 + rng.below(9);
    std::vector<TokenId> body;
    for (std::size_t i = 0; i < body_len; ++i)
      body.push_back(static_cast<TokenId>(rng.below(p.alphabet)));
    for (std::size_t r = 0; r < reps && input.size() < p.length; ++r)
      for (const auto t : body) input.push_back(t);
  }

  const auto program = build_nlr(input, loops, config);
  EXPECT_EQ(expand_nlr(program, loops), input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NlrLossless,
    ::testing::Values(LosslessParam{10, 2, false, 4, 500, 1}, LosslessParam{10, 2, false, 2, 500, 2},
                      LosslessParam{10, 2, true, 4, 500, 3}, LosslessParam{5, 3, false, 3, 500, 4},
                      LosslessParam{50, 2, false, 8, 2000, 5}, LosslessParam{3, 2, false, 16, 1000, 6},
                      LosslessParam{10, 2, true, 2, 2000, 7}, LosslessParam{1, 2, false, 2, 300, 8},
                      LosslessParam{20, 4, false, 5, 1500, 9}, LosslessParam{10, 2, false, 1, 400, 10}));

TEST(Nlr, ReductionShrinksLoopyTraces) {
  // §V's reduction-factor claim, in miniature: a loopy 10k-token stream must
  // reduce by a large factor.
  Fixture f;
  std::vector<TokenId> input;
  const auto a = f.tokens.intern("a");
  const auto b = f.tokens.intern("b");
  const auto c = f.tokens.intern("c");
  for (int i = 0; i < 2500; ++i) {
    input.push_back(a);
    input.push_back(b);
    input.push_back(b);
    input.push_back(c);
  }
  const auto program = build_nlr(input, f.loops);
  EXPECT_LE(program.size(), 3u);
  EXPECT_EQ(expand_nlr(program, f.loops).size(), input.size());
}

}  // namespace
}  // namespace difftrace::core
