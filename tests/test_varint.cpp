#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace difftrace::util {
namespace {

TEST(Varint, EncodesSmallValuesInOneByte) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0);
  put_varint(buf, 1);
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Varint, EncodesBoundaryAt128InTwoBytes) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, RoundTripsMaxUint64) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, RoundTripsSequenceAndAdvancesCursor) {
  const std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, 0xFFFFFFFFull, 1ull << 60};
  std::vector<std::uint8_t> buf;
  for (const auto v : values) put_varint(buf, v);
  std::size_t pos = 0;
  for (const auto v : values) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ThrowsOnTruncatedInput) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), std::out_of_range);
}

TEST(Varint, ThrowsOnOverlongEncoding) {
  // 11 continuation bytes > 64 bits of payload.
  const std::vector<std::uint8_t> buf(11, 0x80);
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), std::exception);
}

TEST(Varint, ThrowsOnEmptyInput) {
  const std::vector<std::uint8_t> buf;
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buf, pos), std::out_of_range);
}

TEST(Zigzag, MapsSignMagnitudeInterleaved) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

class ZigzagRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ZigzagRoundTrip, DecodeInvertsEncode) {
  const auto v = GetParam();
  EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  std::vector<std::uint8_t> buf;
  put_svarint(buf, v);
  std::size_t pos = 0;
  EXPECT_EQ(get_svarint(buf, pos), v);
}

INSTANTIATE_TEST_SUITE_P(Values, ZigzagRoundTrip,
                         ::testing::Values(std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                                           std::int64_t{-1234567}, std::int64_t{1234567},
                                           std::numeric_limits<std::int64_t>::min(),
                                           std::numeric_limits<std::int64_t>::max()));

}  // namespace
}  // namespace difftrace::util
