#include "core/bscore.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

util::Matrix random_dist(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::Matrix d = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) d(i, j) = d(j, i) = 0.1 + rng.uniform();
  return d;
}

TEST(FowlkesMallows, IdenticalLabelingsGiveOne) {
  const std::vector<int> labels = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(fowlkes_mallows_bk(labels, labels), 1.0);
}

TEST(FowlkesMallows, PermutedLabelNamesStillOne) {
  EXPECT_DOUBLE_EQ(fowlkes_mallows_bk({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
}

TEST(FowlkesMallows, DisjointPairingsGiveZero) {
  // {01}{23} vs {02}{13}: no co-clustered pair survives.
  EXPECT_DOUBLE_EQ(fowlkes_mallows_bk({0, 0, 1, 1}, {0, 1, 0, 1}), 0.0);
}

TEST(FowlkesMallows, KnownPartialOverlap) {
  // A = {012}{345}, B = {01}{2345}.
  // T = sum m_ij^2 - n = (4+1+0+16) - 6 = 15 is wrong — contingency:
  //   m = [[2,1],[0,3]] => sum sq = 4+1+9 = 14; T = 8.
  //   P = (3^2+3^2) - 6 = 12;  Q = (2^2+4^2) - 6 = 14.
  const double bk = fowlkes_mallows_bk({0, 0, 0, 1, 1, 1}, {0, 0, 1, 1, 1, 1});
  EXPECT_NEAR(bk, 8.0 / std::sqrt(12.0 * 14.0), 1e-12);
}

TEST(FowlkesMallows, AllSingletonsDegenerate) {
  EXPECT_DOUBLE_EQ(fowlkes_mallows_bk({0, 1, 2}, {0, 1, 2}), 1.0);
}

TEST(FowlkesMallows, LengthMismatchThrows) {
  EXPECT_THROW((void)fowlkes_mallows_bk({0, 1}, {0}), std::invalid_argument);
}

TEST(Bscore, IdenticalDendrogramsScoreOne) {
  const auto d = random_dist(8, 1);
  const auto z = linkage(d, Linkage::Ward);
  EXPECT_DOUBLE_EQ(bscore(z, z, 8), 1.0);
}

TEST(Bscore, DifferentHierarchiesScoreBelowOne) {
  const auto a = linkage(random_dist(8, 1), Linkage::Ward);
  const auto b = linkage(random_dist(8, 99), Linkage::Ward);
  const double s = bscore(a, b, 8);
  EXPECT_LT(s, 1.0);
  EXPECT_GE(s, 0.0);
}

TEST(Bscore, MorePerturbationLowersScore) {
  // Cluster structure: two tight groups. Slight perturbation vs full reshuffle.
  const std::size_t n = 10;
  util::Matrix base = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = (i < 5) == (j < 5);
      base(i, j) = base(j, i) = same ? 0.1 : 2.0;
    }
  util::Matrix slight = base;
  slight(0, 5) = slight(5, 0) = 0.05;  // one object drifts
  const auto scrambled = random_dist(n, 7);

  const auto z0 = linkage(base, Linkage::Average);
  const auto z1 = linkage(slight, Linkage::Average);
  const auto z2 = linkage(scrambled, Linkage::Average);
  EXPECT_GT(bscore(z0, z1, n), bscore(z0, z2, n));
}

TEST(Bscore, TinyInputsDefined) {
  EXPECT_DOUBLE_EQ(bscore({}, {}, 1), 1.0);
  EXPECT_DOUBLE_EQ(bscore({}, {}, 0), 1.0);
  const auto z = linkage(random_dist(2, 3), Linkage::Single);
  EXPECT_DOUBLE_EQ(bscore(z, z, 2), 1.0);
}

TEST(Bscore, SizeMismatchThrows) {
  const auto z = linkage(random_dist(4, 1), Linkage::Single);
  EXPECT_THROW((void)bscore(z, z, 5), std::invalid_argument);
}

}  // namespace
}  // namespace difftrace::core
