// dtsa fixture: alloc-in-hot-path true positives.
//
// Not compiled — lexed by dtsa only. Lines are pinned by
// tools/dtsa/dtsa_selftest.py.
#include <string>
#include <vector>

namespace fixhot {

// DT_HOT: fixture reduction loop
void reduce_loop(std::vector<int>& stack, int token) {
  stack.push_back(token);  // finding: allocation in the hot root itself
  fold(stack);
}

void fold(std::vector<int>& stack) {
  std::string label = std::to_string(stack.size());  // finding: allocation reachable from the hot root
  stack.resize(stack.size() / 2);  // NOLINT-DT(alloc-in-hot-path): fixture shrink-only resize never allocates
  static_cast<void>(label);
}

void cold_path(std::vector<int>& out) {
  out.push_back(1);  // clean: not reachable from any DT_HOT root
}

}  // namespace fixhot
