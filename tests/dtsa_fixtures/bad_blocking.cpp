// dtsa fixture: blocking-under-lock true positives.
//
// Not compiled — lexed by dtsa only. Each finding below is pinned by line in
// tools/dtsa/dtsa_selftest.py; renumbering lines means re-pinning.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "util/sync.hpp"

namespace fixblock {

struct Guarded {
  util::Mutex mu_;
  int counter_ = 0;

  void slow_tick() {
    util::MutexLock lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding: direct blocking op under mu_
    counter_ += 1;
  }

  void checkpoint() {
    util::MutexLock lock(mu_);
    write_journal();  // finding: callee reaches fopen while mu_ is held
  }

  void write_journal() {
    std::FILE* f = std::fopen("journal.bin", "ab");  // blocking site, but no lock here: clean
    static_cast<void>(f);
  }

  void read_config() {
    util::MutexLock lock(mu_);
    std::ifstream in("difftrace.cfg");  // finding: stream constructor opens a file under mu_
    static_cast<void>(in);
  }

  void append_locked(int v) DT_REQUIRES(mu_) {
    counter_ += v;
    fsync(0);  // finding: blocking op in a DT_REQUIRES(mu_) body
  }

  void save_snapshot() {
    util::MutexLock lock(mu_);
    std::FILE* f = std::fopen("snap.bin", "wb");  // NOLINT-DT(blocking-under-lock): fixture snapshot is written under the store lock for a consistent frame
    static_cast<void>(f);
  }
};

}  // namespace fixblock
