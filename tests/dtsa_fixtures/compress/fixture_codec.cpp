// dtsa fixture: the bounded-decode family (lives under compress/, so strict
// decode is allowed here and taints callers outside the family).
#include <vector>

namespace fixcodec {

std::vector<int> decode_all(const Blob& blob) {
  auto codec = open_codec(blob);
  return codec->decode(blob.bytes);  // strict site inside the family: clean, but taints callers
}

}  // namespace fixcodec
