// dtsa fixture: unbounded-decode-reach true positives.
//
// Not compiled — lexed by dtsa only. Lines are pinned by
// tools/dtsa/dtsa_selftest.py. compress/fixture_codec.cpp provides the
// in-family strict decode these frontier findings reach.
#include <vector>

namespace fixreach {

std::vector<int> dump_everything(const Blob& blob) {
  auto decoder = make_decoder(blob);
  return decoder->decode(blob.bytes);  // finding: strict decode outside the family
}

int count_events(const Blob& blob) {
  return fixcodec::decode_all(blob).size();  // finding: call reaches a strict decode
}

std::vector<int> export_checked(const Blob& blob) {
  auto decoder = make_decoder(blob);
  return decoder->decode(blob.bytes);  // NOLINT-DT(unbounded-decode-reach): fixture export is full-fidelity and strict by contract
}

int count_tolerantly(const Blob& blob) {
  auto decoder = make_decoder(blob);
  return decoder->decode_tolerant(blob.bytes).size();  // clean: the bounded entry point
}

}  // namespace fixreach
