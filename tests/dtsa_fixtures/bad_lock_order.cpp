// dtsa fixture: lock-order-consistency true positives.
//
// Not compiled — lexed by dtsa only. Lines are pinned by
// tools/dtsa/dtsa_selftest.py.
#include "util/sync.hpp"

namespace fixlock {

// (a) A MutexLock2 pair whose members also appear in a fixed order elsewhere.
struct MixedPair {
  util::Mutex a_;
  util::Mutex b_;

  void both() {
    util::MutexLock2 lock(a_, b_);  // finding: fixed() establishes a_ -> b_, contradicting by-address
  }

  void fixed() {
    util::MutexLock la(a_);
    util::MutexLock lb(b_);
  }
};

// (b) A three-mutex acquisition cycle across methods.
struct CycleTri {
  util::Mutex m1_;
  util::Mutex m2_;
  util::Mutex m3_;

  void f1() {
    util::MutexLock l1(m1_);
    util::MutexLock l2(m2_);  // finding anchor: smallest cycle member's outgoing edge
  }
  void f2() {
    util::MutexLock l2(m2_);
    util::MutexLock l3(m3_);
  }
  void f3() {
    util::MutexLock l3(m3_);
    util::MutexLock l1(m1_);
  }
};

// (c) Suppressed-with-reason: a legacy pair kept on MutexLock2 while the old
// fixed-order path is migrated.
struct LegacyPair {
  util::Mutex front_;
  util::Mutex back_;

  void swap_halves() {
    util::MutexLock2 lock(front_, back_);  // NOLINT-DT(lock-order-consistency): fixture legacy path still fixes front_ -> back_ during migration
  }

  void drain() {
    util::MutexLock f(front_);
    util::MutexLock b(back_);
  }
};

}  // namespace fixlock
