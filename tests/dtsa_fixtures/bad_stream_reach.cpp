// dtsa fixture: stream-reach true positives.
//
// Not compiled — lexed by dtsa only. Lines are pinned by
// tools/dtsa/dtsa_selftest.py. cli/fixture_render.cpp provides the blessed
// rendering root the frontier finding calls into.
#include <cstdio>
#include <iostream>

namespace fixstream {

void debug_dump(int v) {
  std::cout << "value=" << v << "\n";  // finding: direct stdout outside the blessed roots
}

void finish_run() {
  fixrender::print_report();  // finding: calls a blessed root that writes stdout
}

void trace_progress(int pct) {
  std::printf("%d%%\n", pct);  // NOLINT-DT(stream-reach): fixture progress meter writes stdout by design
}

}  // namespace fixstream
