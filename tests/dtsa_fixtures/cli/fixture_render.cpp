// dtsa fixture: a blessed rendering root (lives under cli/, so its stdout
// writes are allowed — and calls into it from non-blessed code are findings).
#include <iostream>

namespace fixrender {

void print_report() {
  std::cout << "report\n";  // blessed: clean
}

}  // namespace fixrender
