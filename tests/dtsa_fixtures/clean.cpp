// dtsa fixture: lexer near-misses. Every construct here would produce a
// spurious finding if the tokenizer mishandled it; the selftest pins this
// file to ZERO findings.
#include <iostream>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

namespace fixclean {

// Documentation that mentions DT_HOT mid-prose. The marker is only honored
// as a comment's first word, so scan_tokens below must stay cold — its
// push_back is not a finding.
int scan_tokens(std::vector<int>& out) {
  out.push_back(7);
  return 1;
}

// Raw string with the plain `)"` terminator: the payload would be a
// stream-reach finding (and a lock region) if it tokenized.
const char* raw_paren() {
  return R"(util::MutexLock lock(mu_); std::cout << "hidden";)";
}

// Raw string with a custom delimiter whose payload *contains* `)"`: matching
// the short terminator instead of `)dt"` would expose std::printf.
const char* raw_custom() {
  return R"dt(first ")" then std::printf("x"); still inside)dt";
}

// Nested template arguments closed by `>>`, plus `>>` as a shift operator.
int shift_templates() {
  std::map<int, std::vector<std::pair<int, int>>> grid;
  grid.insert({1, {}});
  return static_cast<int>(grid.size() >> 1);
}

// Digit separators: the apostrophes must not open character literals (which
// would swallow the following tokens and garble the rest of the file).
int digit_separators() {
  const int big = 1'000'000;
  const unsigned mask = 0xFF'FFu;
  return big & static_cast<int>(mask);
}

// An operator<< *definition* writing to its own stream parameter is not a
// stdout site.
struct Pair {
  int a = 0;
};
std::ostream& operator<<(std::ostream& os, const Pair& p) {
  os << p.a;
  return os;
}

// Preprocessor line continuation: the continued line belongs to the
// directive, so the std::cout it spells must not become a site in this
// function.
int preprocessor_continuation() {
#define FIXCLEAN_SHOUT(msg) \
  std::cout << (msg) << "\n"
  return 0;
}

// Comment payloads never tokenize.
int commented_payload() {
  /* std::cout << "in a block comment";
     std::printf("also commented"); */
  // std::puts("line comment payload");
  return 2;
}

// `decode` on a non-codec receiver is not the strict entry, and
// decode_tolerant is the remedy, never a finding.
int tolerant_only(Codec* decoder) {
  return decoder->decode_tolerant(3);
}
int parser_decode(Parser& parser) {
  return parser.decode(0);
}

}  // namespace fixclean
