// dtsa fixture: a file whose every finding is suppressed — the selftest pins
// it to zero findings and exactly two suppressions (one rule-specific, one
// wildcard).
#include <cstdio>

#include "util/sync.hpp"

namespace fixsupp {

struct Supp {
  util::Mutex mu_;

  void flush_all() {
    util::MutexLock lock(mu_);
    std::FILE* f = std::fopen("flush.bin", "wb");  // NOLINT-DT(blocking-under-lock): fixture flush holds the lock across the open by design
    static_cast<void>(f);
  }

  void log_direct() {
    std::printf("done\n");  // NOLINT-DT(*): fixture wildcard suppression
  }
};

}  // namespace fixsupp
