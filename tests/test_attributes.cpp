#include "core/attributes.hpp"

#include <gtest/gtest.h>

namespace difftrace::core {
namespace {

struct Fixture {
  TokenTable tokens;
  LoopTable loops;

  NlrProgram program(const std::vector<std::string>& names) {
    std::vector<TokenId> ids;
    for (const auto& n : names) ids.push_back(tokens.intern(n));
    return build_nlr(ids, loops);
  }
};

TEST(AttrConfig, NamesMatchPaperNotation) {
  EXPECT_EQ((AttrConfig{AttrKind::Single, FreqMode::NoFreq}.name()), "sing.noFreq");
  EXPECT_EQ((AttrConfig{AttrKind::Double, FreqMode::Log10}.name()), "doub.log10");
  EXPECT_EQ((AttrConfig{AttrKind::Single, FreqMode::Actual}.name()), "sing.actual");
}

TEST(AttrConfig, AllConfigsEnumeratesSix) {
  EXPECT_EQ(all_attr_configs().size(), 6u);
}

TEST(Attributes, SingleFrequenciesWeightLoopsByCount) {
  Fixture f;
  // a b a b a b -> L^3 with body [a, b]: the loop entry contributes 3 and,
  // with deep mining, the body tokens their observed (expanded) counts.
  const auto program = f.program({"init", "a", "b", "a", "b", "a", "b", "fini"});
  const auto freqs = mine_frequencies(program, f.tokens, f.loops, AttrKind::Single);
  EXPECT_EQ(freqs.at("init"), 1u);
  EXPECT_EQ(freqs.at("L0"), 3u);
  EXPECT_EQ(freqs.at("a"), 3u);
  EXPECT_EQ(freqs.at("b"), 3u);
  EXPECT_EQ(freqs.at("fini"), 1u);
  EXPECT_EQ(freqs.size(), 5u);
}

TEST(Attributes, ShallowSingleMinesOnlyTopLevelEntries) {
  // deep = false: the literal Table V reading used for the Table IV print.
  Fixture f;
  const auto program = f.program({"init", "a", "b", "a", "b", "a", "b", "fini"});
  const auto freqs = mine_frequencies(program, f.tokens, f.loops, AttrKind::Single, /*deep=*/false);
  EXPECT_EQ(freqs.size(), 3u);
  EXPECT_EQ(freqs.at("L0"), 3u);
}

TEST(Attributes, DeepMiningInvariantToLoopSegmentation) {
  // The same underlying behaviour folded at a different phase offset must
  // mine the same token frequencies (the churn-resistance property).
  Fixture f;
  const auto p1 = f.program({"x", "y", "z", "x", "y", "z", "x", "y", "z"});
  Fixture g;
  const auto p2 = g.program({"y", "z", "x", "y", "z", "x", "y", "z", "x"});
  auto f1 = mine_frequencies(p1, f.tokens, f.loops, AttrKind::Single);
  auto f2 = mine_frequencies(p2, g.tokens, g.loops, AttrKind::Single);
  for (const auto* t : {"x", "y", "z"}) {
    EXPECT_EQ(f1.at(t), 3u) << t;
    EXPECT_EQ(f2.at(t), 3u) << t;
  }
}

TEST(Attributes, DoubleMinesConsecutivePairs) {
  Fixture f;
  const auto program = f.program({"x", "y", "z"});
  const auto freqs = mine_frequencies(program, f.tokens, f.loops, AttrKind::Double);
  EXPECT_EQ(freqs.size(), 2u);
  EXPECT_EQ(freqs.at("x>y"), 1u);
  EXPECT_EQ(freqs.at("y>z"), 1u);
}

TEST(Attributes, DoublePairsIncludeLoopEntries) {
  Fixture f;
  const auto program = f.program({"init", "a", "b", "a", "b", "fini"});
  const auto freqs = mine_frequencies(program, f.tokens, f.loops, AttrKind::Double);
  EXPECT_TRUE(freqs.contains("init>L0"));
  EXPECT_TRUE(freqs.contains("L0>fini"));
}

TEST(Attributes, NoFreqDropsCounts) {
  Fixture f;
  const auto program = f.program({"a", "b", "a", "b"});
  const auto attrs = mine_attributes(program, f.tokens, f.loops, {AttrKind::Single, FreqMode::NoFreq});
  EXPECT_EQ(attrs, (std::set<std::string>{"L0", "a", "b"}));
  const auto shallow = mine_attributes(program, f.tokens, f.loops,
                                       {AttrKind::Single, FreqMode::NoFreq, /*deep=*/false});
  EXPECT_EQ(shallow, (std::set<std::string>{"L0"}));
}

TEST(Attributes, ActualEmbedsExactCount) {
  Fixture f;
  const auto program = f.program({"a", "b", "a", "b", "a", "b"});
  const auto attrs = mine_attributes(program, f.tokens, f.loops, {AttrKind::Single, FreqMode::Actual});
  EXPECT_EQ(attrs, (std::set<std::string>{"L0:3", "a:3", "b:3"}));
}

TEST(Attributes, Log10Buckets) {
  Fixture f;
  TokenTable& t = f.tokens;
  // Build programs with loop counts 9, 10, 99, 100 and check bucket edges.
  const auto make_loop = [&](std::size_t reps) {
    std::vector<TokenId> ids;
    for (std::size_t i = 0; i < reps; ++i) {
      ids.push_back(t.intern("p"));
      ids.push_back(t.intern("q"));
    }
    return build_nlr(ids, f.loops);
  };
  const auto attrs9 = mine_attributes(make_loop(9), t, f.loops, {AttrKind::Single, FreqMode::Log10});
  const auto attrs10 = mine_attributes(make_loop(10), t, f.loops, {AttrKind::Single, FreqMode::Log10});
  const auto attrs99 = mine_attributes(make_loop(99), t, f.loops, {AttrKind::Single, FreqMode::Log10});
  const auto attrs100 = mine_attributes(make_loop(100), t, f.loops, {AttrKind::Single, FreqMode::Log10});
  EXPECT_EQ(attrs9, (std::set<std::string>{"L0:e0", "p:e0", "q:e0"}));
  EXPECT_EQ(attrs10, attrs99);
  EXPECT_EQ(*attrs10.begin(), "L0:e1");
  EXPECT_EQ(*attrs100.begin(), "L0:e2");
}

TEST(Attributes, Log10IsCoarserThanActualButFinerThanNoFreq) {
  Fixture f;
  const auto p1 = f.program({"a", "b", "a", "b"});          // L^2
  const auto p2 = f.program({"a", "b", "a", "b", "a", "b"});  // L^3
  const auto actual1 = mine_attributes(p1, f.tokens, f.loops, {AttrKind::Single, FreqMode::Actual});
  const auto actual2 = mine_attributes(p2, f.tokens, f.loops, {AttrKind::Single, FreqMode::Actual});
  EXPECT_NE(actual1, actual2);  // actual distinguishes 2 vs 3
  const auto log1 = mine_attributes(p1, f.tokens, f.loops, {AttrKind::Single, FreqMode::Log10});
  const auto log2 = mine_attributes(p2, f.tokens, f.loops, {AttrKind::Single, FreqMode::Log10});
  EXPECT_EQ(log1, log2);  // log10 buckets them together
}

TEST(Attributes, EmptyProgramYieldsNoAttributes) {
  Fixture f;
  EXPECT_TRUE(mine_attributes({}, f.tokens, f.loops, {}).empty());
  EXPECT_TRUE(mine_frequencies({}, f.tokens, f.loops, AttrKind::Double).empty());
}

TEST(Attributes, SingleItemProgramHasNoPairs) {
  Fixture f;
  const auto program = f.program({"solo"});
  EXPECT_TRUE(mine_frequencies(program, f.tokens, f.loops, AttrKind::Double).empty());
  EXPECT_EQ(mine_frequencies(program, f.tokens, f.loops, AttrKind::Single).size(), 1u);
}

}  // namespace
}  // namespace difftrace::core
