#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "sched/cache.hpp"
#include "sched/pool.hpp"

namespace difftrace::core {
namespace {

simmpi::WorldConfig fast_world() {
  simmpi::WorldConfig config;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(20'000);
  return config;
}

trace::TraceStore trace_odd_even(int nranks, apps::FaultSpec fault) {
  apps::OddEvenConfig config;
  config.nranks = nranks;
  config.elements_per_rank = 8;
  config.fault = fault;
  auto world = fast_world();
  world.nranks = nranks;
  auto run = apps::run_traced(world,
                              [config](simmpi::Comm& comm) { apps::odd_even_rank(comm, config); });
  return std::move(run.store);
}

/// Shared 16-rank normal/faulty trace pairs (collected once; §II-G setup).
class OddEvenPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    normal_ = new trace::TraceStore(trace_odd_even(16, {}));
    swap_ = new trace::TraceStore(trace_odd_even(16, {apps::FaultType::SwapBug, 5, -1, 7}));
    dl_ = new trace::TraceStore(trace_odd_even(16, {apps::FaultType::DlBug, 5, -1, 7}));
  }
  static void TearDownTestSuite() {
    delete normal_;
    delete swap_;
    delete dl_;
    normal_ = swap_ = dl_ = nullptr;
  }

  static trace::TraceStore* normal_;
  static trace::TraceStore* swap_;
  static trace::TraceStore* dl_;
};

trace::TraceStore* OddEvenPipeline::normal_ = nullptr;
trace::TraceStore* OddEvenPipeline::swap_ = nullptr;
trace::TraceStore* OddEvenPipeline::dl_ = nullptr;

TEST_F(OddEvenPipeline, TracesCollectedForAllRanks) {
  EXPECT_EQ(normal_->size(), 16u);
  EXPECT_EQ(swap_->size(), 16u);
  EXPECT_EQ(dl_->size(), 16u);
}

TEST_F(OddEvenPipeline, NormalTracesShowPaperTableTwoContent) {
  const auto tokens = FilterSpec::mpi_all().apply(*normal_, {1, 0});
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "MPI_Init");
  EXPECT_EQ(tokens[1], "MPI_Comm_rank");
  EXPECT_EQ(tokens[2], "MPI_Comm_size");
  EXPECT_EQ(tokens.back(), "MPI_Finalize");
  // Rank 1 exchanges in every phase: 16 × [Recv, Send].
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "MPI_Recv"), 16);
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "MPI_Send"), 16);
}

TEST_F(OddEvenPipeline, EdgeRanksDoHalfTheIterations) {
  const auto t0 = FilterSpec::mpi_all().apply(*normal_, {0, 0});
  const auto t1 = FilterSpec::mpi_all().apply(*normal_, {1, 0});
  EXPECT_EQ(std::count(t0.begin(), t0.end(), "MPI_Send") * 2,
            std::count(t1.begin(), t1.end(), "MPI_Send"));
}

TEST_F(OddEvenPipeline, SessionBuildsPaperTableThreeNlr) {
  const Session session(*normal_, *normal_, FilterSpec::mpi_all(), NlrConfig{});
  const auto& program = session.normal_nlr(session.index_of({2, 0}));
  // init, rank, size, L^16, finalize.
  ASSERT_EQ(program.size(), 5u);
  EXPECT_TRUE(program[3].is_loop());
  EXPECT_EQ(program[3].count, 16u);
  // Even and odd ranks use different loop bodies.
  const auto& odd_program = session.normal_nlr(session.index_of({3, 0}));
  ASSERT_EQ(odd_program.size(), 5u);
  EXPECT_NE(program[3].id, odd_program[3].id);
}

TEST_F(OddEvenPipeline, SwapBugSuspicionFlagsTraceFive) {
  const Session session(*normal_, *swap_, FilterSpec::mpi_all(), NlrConfig{});
  const auto eval = evaluate(session, {AttrKind::Single, FreqMode::NoFreq}, Linkage::Ward);
  const auto idx5 = session.index_of({5, 0});
  for (std::size_t i = 0; i < eval.scores.size(); ++i)
    if (i != idx5) {
      EXPECT_GE(eval.scores[idx5], eval.scores[i]) << "trace " << i;
    }
  EXPECT_GT(eval.scores[idx5], 0.0);
}

TEST_F(OddEvenPipeline, SwapBugDiffNlrShowsFigureFive) {
  const Session session(*normal_, *swap_, FilterSpec::mpi_all(), NlrConfig{});
  const auto d = session.diffnlr({5, 0});
  const auto text = d.render();
  EXPECT_NE(text.find("^16"), std::string::npos);  // normal-only L^16
  EXPECT_NE(text.find("^7"), std::string::npos);   // faulty L^7 ...
  EXPECT_NE(text.find("^9"), std::string::npos);   // ... then L^9
  EXPECT_NE(text.find("= MPI_Finalize"), std::string::npos);  // both terminate
}

TEST_F(OddEvenPipeline, DlBugDiffNlrShowsFigureSix) {
  const Session session(*normal_, *dl_, FilterSpec::mpi_all(), NlrConfig{});
  const auto d = session.diffnlr({5, 0});
  const auto text = d.render();
  EXPECT_NE(text.find("- MPI_Finalize"), std::string::npos);  // faulty never got there
  EXPECT_NE(text.find("+ MPI_Recv"), std::string::npos);      // stuck in the dead receive
}

TEST_F(OddEvenPipeline, DlBugRankingFlagsTheTruncationOutlier) {
  // The dead receive in rank 5 cascades: every rank's exchange loop
  // eventually starves and the watchdog truncates all traces — except the
  // last rank, which finishes its (half-length) loop and blocks inside
  // MPI_Finalize. Relative to the normal run that lone "terminated
  // normally"-looking trace is the most dissimilar one, exactly the
  // JSM_faulty observation of §II-A ("processes whose execution got
  // truncated will look highly dissimilar to those that terminated
  // normally").
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all(), FilterSpec::mpi_send_recv()};
  const auto table = sweep(*normal_, *dl_, config);
  ASSERT_FALSE(table.rows.empty());
  EXPECT_EQ(table.consensus_thread(), "15.0");
  const auto tokens = FilterSpec::mpi_all().apply(*dl_, {15, 0});
  EXPECT_EQ(tokens.back(), "MPI_Finalize");
}

TEST_F(OddEvenPipeline, DlBugLeastProgressedTraceIsFive) {
  // The root cause is found through the paper's progress lens (§II-D): the
  // NLR-expanded faulty trace of rank 5 covers the smallest fraction of its
  // normal counterpart — it stopped first, everyone else starved later.
  const Session session(*normal_, *dl_, FilterSpec::mpi_all(), NlrConfig{});
  EXPECT_EQ(session.traces()[session.least_progressed()], (trace::TraceKey{5, 0}));
  EXPECT_LT(session.progress_ratio(session.least_progressed()), 0.6);
}

TEST_F(OddEvenPipeline, RankingRowsSortedByBscore) {
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all()};
  const auto table = sweep(*normal_, *swap_, config);
  ASSERT_EQ(table.rows.size(), 6u);  // 1 filter × 6 attribute configs
  for (std::size_t i = 1; i < table.rows.size(); ++i)
    EXPECT_LE(table.rows[i - 1].bscore, table.rows[i].bscore);
}

TEST_F(OddEvenPipeline, RankingTableRenders) {
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all()};
  const auto table = sweep(*normal_, *swap_, config);
  const auto text = table.render();
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("B-score"), std::string::npos);
  EXPECT_NE(text.find("11.plt.mpiall.0K10"), std::string::npos);
  EXPECT_NE(text.find("sing.noFreq"), std::string::npos);
}

TEST_F(OddEvenPipeline, IdenticalRunsProduceNoSuspicion) {
  const Session session(*normal_, *normal_, FilterSpec::mpi_all(), NlrConfig{});
  const auto eval = evaluate(session, {AttrKind::Single, FreqMode::Actual}, Linkage::Ward);
  EXPECT_DOUBLE_EQ(eval.jsm_d.max_abs(), 0.0);
  EXPECT_DOUBLE_EQ(eval.bscore, 1.0);
  const auto top = select_suspicious(eval.scores, 6, 1.0);
  EXPECT_TRUE(top.empty());
}

TEST_F(OddEvenPipeline, FacadeTiesItTogether) {
  const DiffTrace dt(*normal_, *swap_);
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all()};
  const auto table = dt.rank(config);
  EXPECT_EQ(table.consensus_thread(), "5.0");
  const auto session = dt.make_session(FilterSpec::mpi_all());
  EXPECT_FALSE(session.diffnlr({5, 0}).identical());
  EXPECT_TRUE(session.diffnlr({9, 0}).identical());
}

TEST_F(OddEvenPipeline, WeightedEvaluationFlagsTraceFive) {
  const Session session(*normal_, *swap_, FilterSpec::mpi_all(), NlrConfig{});
  const auto eval = evaluate_weighted(session, AttrKind::Single, Linkage::Ward);
  const auto idx5 = session.index_of({5, 0});
  for (std::size_t i = 0; i < eval.scores.size(); ++i)
    if (i != idx5) {
      EXPECT_GE(eval.scores[idx5], eval.scores[i]) << "trace " << i;
    }
  EXPECT_GT(eval.scores[idx5], 0.0);
  EXPECT_LT(eval.bscore, 1.0 + 1e-12);
}

TEST_F(OddEvenPipeline, WeightedEvaluationIdenticalRunsAreClean) {
  const Session session(*normal_, *normal_, FilterSpec::mpi_all(), NlrConfig{});
  const auto eval = evaluate_weighted(session, AttrKind::Double, Linkage::Ward);
  EXPECT_DOUBLE_EQ(eval.jsm_d.max_abs(), 0.0);
  EXPECT_DOUBLE_EQ(eval.bscore, 1.0);
}

TEST_F(OddEvenPipeline, TracesAreDeterministicAcrossCollections) {
  // The whole methodology rests on the normal run being a reproducible
  // baseline: a second collection of the same configuration must produce
  // token-identical filtered traces.
  const auto again = trace_odd_even(16, {});
  for (const auto& key : normal_->keys()) {
    EXPECT_EQ(FilterSpec::mpi_all().apply(*normal_, key), FilterSpec::mpi_all().apply(again, key))
        << key.label();
  }
}

TEST_F(OddEvenPipeline, ParallelSweepMatchesSerial) {
  // The engine's core promise: the ranking table is byte-identical at any
  // job count (1 is today's exact serial path, 0 resolves to the hardware).
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all(), FilterSpec::mpi_send_recv(),
                    FilterSpec::mpi_collectives(), FilterSpec::everything()};
  config.analysis_threads = 1;
  const auto baseline = sweep(*normal_, *swap_, config);
  ASSERT_EQ(baseline.rows.size(), 24u);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}, std::size_t{8}, std::size_t{0}}) {
    config.analysis_threads = jobs;
    EXPECT_EQ(baseline.render(), sweep(*normal_, *swap_, config).render()) << "jobs " << jobs;
  }
}

struct SweepCacheDir {
  std::filesystem::path path;
  SweepCacheDir() {
    path = std::filesystem::temp_directory_path() /
           ("difftrace-pipeline-cache-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~SweepCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST_F(OddEvenPipeline, ParallelCachedSessionMatchesSerial) {
  const auto filter = FilterSpec::mpi_all();
  const NlrConfig nlr;
  const Session serial(*normal_, *swap_, filter, nlr);

  SweepCacheDir dir;
  sched::Cache cache(dir.path);
  sched::Pool pool(4);
  SessionOptions options;
  options.pool = &pool;
  options.cache = &cache;
  // Cold (fills the cache) and warm (rehydrates from it) must both equal
  // the serial build down to table identity, not just program shape.
  for (const char* pass : {"cold", "warm"}) {
    const Session built(*normal_, *swap_, filter, nlr, options);
    ASSERT_EQ(built.traces(), serial.traces()) << pass;
    ASSERT_EQ(built.tokens().size(), serial.tokens().size()) << pass;
    for (TokenId t = 0; t < serial.tokens().size(); ++t)
      EXPECT_EQ(built.tokens().name(t), serial.tokens().name(t)) << pass << " token " << t;
    ASSERT_EQ(built.loops().size(), serial.loops().size()) << pass;
    for (std::uint32_t l = 0; l < serial.loops().size(); ++l) {
      EXPECT_EQ(built.loops().body(l), serial.loops().body(l)) << pass << " loop " << l;
      EXPECT_EQ(built.loops().shape_id(l), serial.loops().shape_id(l)) << pass << " loop " << l;
    }
    for (std::size_t i = 0; i < serial.traces().size(); ++i) {
      EXPECT_EQ(built.normal_nlr(i), serial.normal_nlr(i)) << pass << " trace " << i;
      EXPECT_EQ(built.faulty_nlr(i), serial.faulty_nlr(i)) << pass << " trace " << i;
    }
  }
  EXPECT_GT(cache.hits(), 0u);  // the warm pass actually used the artifacts
}

TEST_F(OddEvenPipeline, SweepColdAndWarmCacheAreByteIdentical) {
  SweepCacheDir dir;
  sched::Cache cache(dir.path);
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all(), FilterSpec::mpi_send_recv()};
  config.analysis_threads = 2;
  config.cache = &cache;

  const auto cold = sweep(*normal_, *swap_, config);
  const auto cold_misses = cache.misses();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cold_misses, 0u);

  const auto warm = sweep(*normal_, *swap_, config);
  EXPECT_EQ(cold.render(), warm.render());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), cold_misses);  // warm run missed nothing

  // And a cacheless sweep agrees with both.
  config.cache = nullptr;
  EXPECT_EQ(cold.render(), sweep(*normal_, *swap_, config).render());
}

TEST_F(OddEvenPipeline, CorruptedCacheEntriesAreRecomputedCleanly) {
  SweepCacheDir dir;
  sched::Cache cache(dir.path);
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all()};
  config.analysis_threads = 2;
  config.cache = &cache;
  const auto baseline = sweep(*normal_, *swap_, config);

  // Plant defects in every entry: truncate one, bit-flip the rest.
  std::vector<std::filesystem::path> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path))
    entries.push_back(entry.path());
  ASSERT_FALSE(entries.empty());
  std::filesystem::resize_file(entries.front(), 4);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    std::fstream f(entries[i], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(5);
    f.put('\x5a');
  }

  const auto hits_before = cache.hits();
  const auto misses_before = cache.misses();
  const auto recomputed = sweep(*normal_, *swap_, config);
  EXPECT_EQ(baseline.render(), recomputed.render());
  EXPECT_EQ(cache.hits(), hits_before);          // nothing defective was trusted
  EXPECT_GT(cache.misses(), misses_before);      // the defects were counted as misses

  // The recompute overwrote the planted defects with good frames.
  EXPECT_EQ(cache.verify().bad, 0u);
}

TEST_F(OddEvenPipeline, FoldKnownBodiesFallsBackToSerialButStaysCached) {
  // fold_known_bodies couples traces through the shared loop table, so the
  // per-trace NLR cache is disabled — but the sweep must still be
  // deterministic and the per-row evaluation cache still applies.
  SweepCacheDir dir;
  sched::Cache cache(dir.path);
  SweepConfig config;
  config.filters = {FilterSpec::mpi_all()};
  config.pipeline.nlr.fold_known_bodies = true;
  config.analysis_threads = 1;
  const auto serial = sweep(*normal_, *swap_, config);

  config.analysis_threads = 4;
  config.cache = &cache;
  const auto cold = sweep(*normal_, *swap_, config);
  const auto warm = sweep(*normal_, *swap_, config);
  EXPECT_EQ(serial.render(), cold.render());
  EXPECT_EQ(serial.render(), warm.render());
  EXPECT_GT(cache.hits(), 0u);  // evaluation artifacts hit on the warm run
}

TEST(RankingTable, ConsensusOfEmptyTableIsBenign) {
  RankingTable table;
  EXPECT_EQ(table.consensus_thread(), "");
  EXPECT_EQ(table.consensus_process(), -1);
  EXPECT_NE(table.render().find("Filter"), std::string::npos);
}

TEST(RankingTable, ConsensusWeighsFirstPlaceHighest) {
  RankingTable table;
  RankingRow a;
  a.top_threads = {"1.0", "2.0", "3.0"};
  a.top_processes = {1, 2};
  RankingRow b;
  b.top_threads = {"2.0", "1.0"};
  b.top_processes = {2};
  RankingRow c;
  c.top_threads = {"2.0"};
  c.top_processes = {2};
  table.rows = {a, b, c};
  // 2.0: 2+3+3 = 8 votes; 1.0: 3+2 = 5 votes.
  EXPECT_EQ(table.consensus_thread(), "2.0");
  EXPECT_EQ(table.consensus_process(), 2);
}

TEST(SelectSuspicious, ThresholdAndCap) {
  const std::vector<double> scores = {0.0, 5.0, 0.1, 4.9, 0.05};
  const auto top = select_suspicious(scores, 6, 1.0);
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0], 1u);
  const auto capped = select_suspicious(scores, 1, 0.0);
  EXPECT_EQ(capped.size(), 1u);
}

TEST(SelectSuspicious, AllZeroGivesEmpty) {
  EXPECT_TRUE(select_suspicious({0.0, 0.0, 0.0}, 6, 1.0).empty());
}

TEST(SelectSuspicious, SingleNonzeroAlwaysReported) {
  const auto top = select_suspicious({0.0, 0.0, 0.3}, 6, 1.0);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 2u);
}

}  // namespace
}  // namespace difftrace::core
