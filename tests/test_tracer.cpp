#include "instrument/tracer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace difftrace::instrument {
namespace {

using trace::EventKind;
using trace::Image;
using trace::TraceKey;

/// Decoded (name, kind) pairs of one trace.
std::vector<std::pair<std::string, EventKind>> decoded(const trace::TraceStore& store, TraceKey key) {
  std::vector<std::pair<std::string, EventKind>> out;
  for (const auto& event : store.decode(key))
    out.emplace_back(store.registry().name(event.fid), event.kind);
  return out;
}

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Never leak a session across tests.
    if (Tracer::instance().session_active()) (void)Tracer::instance().end_session();
  }
};

TEST_F(TracerTest, SessionLifecycle) {
  EXPECT_FALSE(Tracer::instance().session_active());
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  EXPECT_TRUE(Tracer::instance().session_active());
  EXPECT_THROW(
      Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>()),
      std::logic_error);
  (void)Tracer::instance().end_session();
  EXPECT_FALSE(Tracer::instance().session_active());
  EXPECT_THROW((void)Tracer::instance().end_session(), std::logic_error);
}

TEST_F(TracerTest, NullRegistryRejected) {
  EXPECT_THROW(Tracer::instance().begin_session(nullptr), std::invalid_argument);
}

TEST_F(TracerTest, ScopeEmitsCallAndReturn) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  {
    ThreadBinding bind(TraceKey{0, 0});
    {
      TraceScope scope("foo");
      TraceScope inner("bar");
    }
  }
  const auto store = Tracer::instance().end_session();
  const auto events = decoded(store, {0, 0});
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (std::pair<std::string, EventKind>{"foo", EventKind::Call}));
  EXPECT_EQ(events[1], (std::pair<std::string, EventKind>{"bar", EventKind::Call}));
  EXPECT_EQ(events[2], (std::pair<std::string, EventKind>{"bar", EventKind::Return}));
  EXPECT_EQ(events[3], (std::pair<std::string, EventKind>{"foo", EventKind::Return}));
}

TEST_F(TracerTest, PltScopesBracketApiCalls) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  {
    ThreadBinding bind(TraceKey{0, 0});
    TraceScope scope("MPI_Send", Image::MpiLib, /*plt=*/true);
  }
  const auto store = Tracer::instance().end_session();
  const auto events = decoded(store, {0, 0});
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].first, "MPI_Send@plt");
  EXPECT_EQ(events[1].first, "MPI_Send");
  EXPECT_EQ(events[2].first, "MPI_Send");
  EXPECT_EQ(events[3].first, "MPI_Send@plt");
}

TEST_F(TracerTest, MainImageLevelDropsInternalFunctions) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>(),
                                   CaptureLevel::MainImage);
  {
    ThreadBinding bind(TraceKey{0, 0});
    TraceScope app("app_fn", Image::Main);
    TraceScope internal("MPID_Helper", Image::Internal);
    TraceScope sys("memcpy", Image::SystemLib);
  }
  const auto store = Tracer::instance().end_session();
  const auto events = decoded(store, {0, 0});
  for (const auto& [name, kind] : events) EXPECT_NE(name, "MPID_Helper");
  EXPECT_EQ(events.size(), 4u);  // app_fn + memcpy, call+return each
}

TEST_F(TracerTest, AllImagesLevelKeepsInternalFunctions) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>(),
                                   CaptureLevel::AllImages);
  {
    ThreadBinding bind(TraceKey{0, 0});
    TraceScope internal("MPID_Helper", Image::Internal);
  }
  const auto store = Tracer::instance().end_session();
  EXPECT_EQ(decoded(store, {0, 0}).size(), 2u);
}

TEST_F(TracerTest, EventsWithoutBindingAreDropped) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  {
    TraceScope scope("unbound");
  }
  const auto store = Tracer::instance().end_session();
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(TracerTest, EventsOutsideSessionAreDropped) {
  TraceScope scope("no_session");  // must not crash or record anywhere
  SUCCEED();
}

TEST_F(TracerTest, RebindingSameKeyAppends) {
  // Successive OpenMP regions reuse the same per-thread trace file.
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  for (int region = 0; region < 3; ++region) {
    std::thread worker([&] {
      ThreadBinding bind(TraceKey{0, 1});
      TraceScope scope("work");
    });
    worker.join();
  }
  const auto store = Tracer::instance().end_session();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.decode({0, 1}).size(), 6u);
}

TEST_F(TracerTest, DoubleBindThrows) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  ThreadBinding bind(TraceKey{0, 0});
  EXPECT_THROW(Tracer::instance().bind_current_thread(TraceKey{0, 1}), std::logic_error);
}

TEST_F(TracerTest, ScopedBindingIsNoopWithoutSession) {
  ScopedBinding bind(TraceKey{0, 0});  // no session: must not throw
  SUCCEED();
}

TEST_F(TracerTest, FreezeAllTruncatesEverything) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  {
    ThreadBinding bind(TraceKey{3, 0});
    Tracer::instance().on_call("before", Image::Main);
    Tracer::instance().freeze_all();
    Tracer::instance().on_call("after", Image::Main);  // dropped
  }
  const auto store = Tracer::instance().end_session();
  const auto events = decoded(store, {3, 0});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, "before");
  EXPECT_TRUE(store.blob({3, 0}).truncated);
}

TEST_F(TracerTest, ParallelThreadsGetSeparateStreams) {
  Tracer::instance().begin_session(std::make_shared<trace::FunctionRegistry>());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      ThreadBinding bind(TraceKey{0, t});
      for (int i = 0; i < 50; ++i) TraceScope scope("fn" + std::to_string(t));
    });
  }
  for (auto& t : threads) t.join();
  const auto store = Tracer::instance().end_session();
  EXPECT_EQ(store.size(), 8u);
  for (int t = 0; t < 8; ++t) {
    const auto events = decoded(store, {0, t});
    ASSERT_EQ(events.size(), 100u);
    EXPECT_EQ(events[0].first, "fn" + std::to_string(t));
  }
}

}  // namespace
}  // namespace difftrace::instrument
