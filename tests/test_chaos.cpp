// Fault-injection tests for the resilient-ingestion subsystem: corruption
// fuzzing of the codecs and the varint layer, salvage of chaos-mutated
// archives, the exhaustive truncation sweep (every intact blob must be
// recovered no matter where the file ends), watchdog freeze-ordering, and
// the end-to-end degraded-mode pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "compress/codec.hpp"
#include "core/report.hpp"
#include "trace/chaos.hpp"
#include "trace/store.hpp"
#include "util/prng.hpp"
#include "util/varint.hpp"

namespace difftrace {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const std::string& name) {
  return fs::temp_directory_path() / ("difftrace_chaos_" + name);
}

struct TempFile {
  fs::path path;
  explicit TempFile(const std::string& name) : path(temp_file(name)) {}
  ~TempFile() { std::error_code ec; fs::remove(path, ec); }
};

// --- v2 frame walking (test-side mirror of the format in DESIGN.md) ---------

constexpr std::uint32_t kFrameSync = 0xD1FFC0DEu;
constexpr std::size_t kHeaderBytes = 8;        // "DTR2" + u32 version
constexpr std::size_t kFrameHeaderBytes = 13;  // sync + tag + crc + len
constexpr std::uint8_t kTagBlob = 2;

std::uint32_t read_u32le(std::span<const std::uint8_t> buf, std::size_t at) {
  return static_cast<std::uint32_t>(buf[at]) | (static_cast<std::uint32_t>(buf[at + 1]) << 8) |
         (static_cast<std::uint32_t>(buf[at + 2]) << 16) |
         (static_cast<std::uint32_t>(buf[at + 3]) << 24);
}

struct Frame {
  std::uint8_t tag = 0;
  std::size_t offset = 0;  // frame start (sync marker)
  std::size_t end = 0;     // one past the payload
};

std::vector<Frame> walk_frames(std::span<const std::uint8_t> archive) {
  std::vector<Frame> frames;
  std::size_t pos = kHeaderBytes;
  while (pos + kFrameHeaderBytes <= archive.size() && read_u32le(archive, pos) == kFrameSync) {
    const auto len = read_u32le(archive, pos + 9);
    const auto end = pos + kFrameHeaderBytes + len;
    if (end > archive.size()) break;
    frames.push_back({archive[pos + 4], pos, end});
    pos = end;
  }
  return frames;
}

// --- fixtures ----------------------------------------------------------------

simmpi::WorldConfig fast_world(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(20'000);
  return config;
}

trace::TraceStore collect_oddeven(int nranks, apps::FaultSpec fault = {},
                                  const std::string& codec = "parlot") {
  apps::OddEvenConfig config;
  config.nranks = nranks;
  config.elements_per_rank = 16;
  config.fault = fault;
  auto run = apps::run_traced(fast_world(nranks),
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); },
                              instrument::CaptureLevel::MainImage, codec);
  return std::move(run.store);
}

/// A call-balanced symbol stream with enough structure for every codec to
/// exercise its run/phrase machinery (nested loops of calls and returns).
std::vector<compress::Symbol> loopy_symbols(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<compress::Symbol> symbols;
  symbols.reserve(n);
  std::vector<compress::Symbol> stack;
  while (symbols.size() < n) {
    const bool call = stack.empty() || rng.below(3) != 0;
    if (call) {
      const auto fid = static_cast<compress::Symbol>(rng.below(12));
      stack.push_back(fid);
      symbols.push_back(fid * 2);
    } else {
      symbols.push_back(stack.back() * 2 + 1);
      stack.pop_back();
    }
  }
  return symbols;
}

std::vector<std::uint8_t> encode_with_flushes(const std::string& codec_name,
                                              const std::vector<compress::Symbol>& symbols) {
  auto codec = compress::make_codec(codec_name);
  std::size_t i = 0;
  for (const auto sym : symbols) {
    codec.encoder->push(sym);
    if (++i % 64 == 0) codec.encoder->flush();  // periodic flush boundaries
  }
  codec.encoder->flush();
  return codec.encoder->bytes();
}

// --- codec corruption fuzz (satellite c) ------------------------------------

class CodecFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecFuzz, FiveHundredSeededMutationsNeverCrashOrOverRead) {
  const auto codec_name = GetParam();
  const auto symbols = loopy_symbols(2'000, 42);
  const auto clean = encode_with_flushes(codec_name, symbols);
  auto codec = compress::make_codec(codec_name);

  // Sanity: the clean stream round-trips completely.
  const auto full = codec.decoder->decode_prefix(clean, compress::kNoSymbolCap);
  ASSERT_TRUE(full.complete);
  ASSERT_EQ(full.symbols, symbols);
  ASSERT_EQ(full.consumed, clean.size());

  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    util::Xoshiro256 rng(seed * 2654435761ULL + 17);
    auto mutated = clean;
    if (seed % 2 == 0) {
      mutated.resize(rng.below(clean.size()));  // truncation
    } else {
      const auto bit = rng.below(clean.size() * 8);  // single bit flip
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto result = codec.decoder->decode_prefix(mutated);
    // No crash, no hang, no over-read: whatever came back must obey the
    // prefix contract.
    EXPECT_LE(result.consumed, mutated.size()) << codec_name << " seed " << seed;
    EXPECT_LE(result.symbols.size(), compress::kDefaultSymbolCap) << codec_name << " seed " << seed;
    if (!result.complete)
      EXPECT_FALSE(result.error.empty()) << codec_name << " seed " << seed;
  }
}

TEST_P(CodecFuzz, TruncationAtEveryFlushBoundaryKeepsThePrefix) {
  const auto codec_name = GetParam();
  const auto symbols = loopy_symbols(512, 7);
  auto codec = compress::make_codec(codec_name);
  std::vector<std::size_t> flush_offsets;
  std::size_t i = 0;
  for (const auto sym : symbols) {
    codec.encoder->push(sym);
    if (++i % 64 == 0) {
      codec.encoder->flush();
      flush_offsets.push_back(codec.encoder->bytes().size());
    }
  }
  codec.encoder->flush();
  const auto& clean = codec.encoder->bytes();

  for (const auto offset : flush_offsets) {
    const auto result = codec.decoder->decode_prefix(
        std::span(clean.data(), offset), compress::kNoSymbolCap);
    ASSERT_TRUE(result.complete) << codec_name << " cut at flush offset " << offset;
    // Everything pushed before that flush is recovered exactly.
    ASSERT_LE(result.symbols.size(), symbols.size());
    EXPECT_TRUE(std::equal(result.symbols.begin(), result.symbols.end(), symbols.begin()))
        << codec_name << " cut at flush offset " << offset;
  }
}

TEST_P(CodecFuzz, SymbolCapStopsDecodeBombs) {
  const auto codec_name = GetParam();
  const auto clean = encode_with_flushes(codec_name, loopy_symbols(4'096, 3));
  auto codec = compress::make_codec(codec_name);
  const auto result = codec.decoder->decode_prefix(clean, 100);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.symbols.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzz, ::testing::Values("parlot", "lz78", "null"));

TEST(VarintFuzz, FiveHundredMutatedBuffersNeverOverRead) {
  std::vector<std::uint8_t> clean;
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 20, ~0ULL >> 1, ~0ULL})
    util::put_varint(clean, v);

  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    util::Xoshiro256 rng(seed + 1000);
    auto buf = clean;
    if (seed % 3 == 0) {
      buf.resize(rng.below(clean.size() + 1));
    } else if (seed % 3 == 1) {
      if (!buf.empty()) {
        const auto bit = rng.below(buf.size() * 8);
        buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    } else {
      buf.assign(rng.below(12), 0xFF);  // all-continuation bytes: worst case
    }
    std::size_t pos = 0;
    // Reads either produce a value or throw; pos never passes the end.
    while (pos < buf.size()) {
      try {
        (void)util::get_varint(buf, pos);
      } catch (const std::exception&) {
        break;
      }
      ASSERT_LE(pos, buf.size()) << "seed " << seed;
    }
  }
}

// --- archive chaos + salvage (tentpole) -------------------------------------

TEST(ArchiveChaos, RandomFaultsAlwaysSalvageWithoutThrowing) {
  const auto store = collect_oddeven(4);
  TempFile clean("random.dtr");
  TempFile hurt("random_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto mutated = trace::chaos_random(archive, seed);
    trace::chaos_write_file(hurt.path, mutated.bytes);
    const auto result = trace::TraceStore::salvage(hurt.path);  // must not throw
    // Every recovered trace must decode without throwing.
    for (const auto& key : result.store.keys()) {
      const auto decoded = result.store.decode_tolerant(key);
      EXPECT_LE(decoded.events.size(), result.store.blob(key).event_count)
          << mutated.description << " trace " << key.label();
    }
  }
}

TEST(ArchiveChaos, TruncationSweepRecoversEveryFullyContainedBlob) {
  // Acceptance criterion: truncate the archive at EVERY byte past the
  // registry frame; salvage must recover 100% of the blobs whose frames are
  // fully contained in the remaining prefix.
  const auto store = collect_oddeven(3);
  TempFile clean("sweep.dtr");
  TempFile cut("sweep_cut.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  const auto frames = walk_frames(archive);
  ASSERT_GE(frames.size(), 2u);  // registry + at least one blob
  const auto registry_end = frames.front().end;

  for (std::size_t at = registry_end; at <= archive.size(); ++at) {
    std::size_t contained = 0;
    for (const auto& frame : frames)
      if (frame.tag == kTagBlob && frame.end <= at) ++contained;

    const auto mutated = trace::chaos_truncate(archive, at);
    trace::chaos_write_file(cut.path, mutated.bytes);
    const auto result = trace::TraceStore::salvage(cut.path);
    EXPECT_TRUE(result.report.registry_ok) << "cut at " << at;
    EXPECT_EQ(result.report.recovered, contained) << "cut at " << at;
    EXPECT_GE(result.store.size(), contained) << "cut at " << at;
  }
}

TEST(ArchiveChaos, BitFlipInBlobPayloadDegradesOnlyThatBlob) {
  const auto store = collect_oddeven(4);
  TempFile clean("flip.dtr");
  TempFile hurt("flip_hurt.dtr");
  store.save(clean.path);
  auto archive = trace::chaos_read_file(clean.path);

  const auto frames = walk_frames(archive);
  std::vector<Frame> blobs;
  for (const auto& frame : frames)
    if (frame.tag == kTagBlob) blobs.push_back(frame);
  ASSERT_GE(blobs.size(), 2u);

  // Flip one bit in the middle of the last blob's payload.
  const auto& victim = blobs.back();
  const auto payload_at = victim.offset + kFrameHeaderBytes;
  archive[(payload_at + victim.end) / 2] ^= 0x10;
  trace::chaos_write_file(hurt.path, archive);

  const auto result = trace::TraceStore::salvage(hurt.path);
  EXPECT_TRUE(result.report.registry_ok);
  EXPECT_EQ(result.report.recovered, blobs.size() - 1);
  EXPECT_EQ(result.report.salvaged + result.report.dropped, 1u);
  // The other blobs are untouched and still strictly decodable.
  std::size_t healthy = 0;
  for (const auto& key : result.store.keys())
    if (!result.store.blob(key).salvaged) ++healthy;
  EXPECT_EQ(healthy, blobs.size() - 1);
}

TEST(ArchiveChaos, DropBlobRemovesExactlyOneTrace) {
  const auto store = collect_oddeven(4);
  TempFile clean("drop.dtr");
  TempFile hurt("drop_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  const auto mutated = trace::chaos_drop_blob(archive, 1);
  trace::chaos_write_file(hurt.path, mutated.bytes);
  const auto result = trace::TraceStore::salvage(hurt.path);
  EXPECT_TRUE(result.report.registry_ok);
  EXPECT_EQ(result.store.size(), store.size() - 1);
  EXPECT_EQ(result.report.dropped, 0u);  // excision is clean: nothing partial
}

TEST(ArchiveChaos, FreezeMidFlushKeepsAllEarlierBlobsAndAPrefixOfTheLast) {
  const auto store = collect_oddeven(4);
  TempFile clean("freeze.dtr");
  TempFile hurt("freeze_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  std::size_t blob_count = 0;
  for (const auto& frame : walk_frames(archive))
    if (frame.tag == kTagBlob) ++blob_count;
  ASSERT_GE(blob_count, 2u);

  const auto mutated = trace::chaos_freeze_mid_flush(archive, 11);
  trace::chaos_write_file(hurt.path, mutated.bytes);
  const auto result = trace::TraceStore::salvage(hurt.path);
  EXPECT_TRUE(result.report.registry_ok);
  EXPECT_EQ(result.report.recovered, blob_count - 1);
  EXPECT_LE(result.report.dropped, 1u);
}

TEST(ArchiveChaos, StrictLoadErrorsNameSectionAndOffset) {
  const auto store = collect_oddeven(2);
  TempFile clean("strict.dtr");
  TempFile hurt("strict_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  const auto mutated = trace::chaos_truncate(archive, archive.size() - 3);
  trace::chaos_write_file(hurt.path, mutated.bytes);
  try {
    (void)trace::TraceStore::load(hurt.path);
    FAIL() << "strict load of a truncated archive must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("byte"), std::string::npos) << what;  // the failure offset
    EXPECT_NE(what.find("frame"), std::string::npos) << what;  // the section
  }
}

TEST(ArchiveChaos, V1ArchivesStillSalvage) {
  // A hand-built v1 archive (flat varint stream, no framing): magic,
  // version, registry, one blob — then truncated mid-blob.
  std::vector<std::uint8_t> v1;
  util::put_varint(v1, 0x44545243);  // v1 magic
  util::put_varint(v1, 1);           // version
  util::put_varint(v1, 2);           // registry: 2 functions
  for (const std::string name : {"main", "work"}) {
    util::put_varint(v1, name.size());
    v1.insert(v1.end(), name.begin(), name.end());
    util::put_varint(v1, 0);  // image = Main
  }
  util::put_varint(v1, 1);  // 1 blob
  util::put_svarint(v1, 0);
  util::put_svarint(v1, 0);
  const std::string codec = "null";
  util::put_varint(v1, codec.size());
  v1.insert(v1.end(), codec.begin(), codec.end());
  auto null_codec = compress::make_codec("null");
  for (const auto sym : {0u, 2u, 3u, 1u}) null_codec.encoder->push(sym);
  null_codec.encoder->flush();
  const auto& bytes = null_codec.encoder->bytes();
  util::put_varint(v1, 4);  // event_count
  util::put_varint(v1, 0);  // flags
  util::put_varint(v1, bytes.size());
  v1.insert(v1.end(), bytes.begin(), bytes.end());

  TempFile full("v1_full.dtr");
  trace::chaos_write_file(full.path, v1);
  const auto loaded = trace::TraceStore::load(full.path);  // strict v1 load
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.decode({0, 0}).size(), 4u);

  TempFile torn("v1_torn.dtr");
  trace::chaos_write_file(torn.path, trace::chaos_truncate(v1, v1.size() - 2).bytes);
  const auto result = trace::TraceStore::salvage(torn.path);
  EXPECT_EQ(result.report.version, 1);
  EXPECT_TRUE(result.report.registry_ok);
  ASSERT_EQ(result.store.size(), 1u);
  const auto decoded = result.store.decode_tolerant({0, 0});
  EXPECT_FALSE(decoded.complete);
  EXPECT_GE(decoded.events.size(), 1u);  // a prefix survived
}

// --- watchdog freeze-ordering (satellite d) ----------------------------------

TEST(WatchdogFreeze, NoFabricatedReturnsAfterDeadlockDetection) {
  // The watchdog freezes every TraceWriter BEFORE cancelling ranks, so a
  // salvaged stream never contains Return events invented during teardown:
  // every decoded prefix must be call-balanced or truncated mid-call-stack,
  // never Return-heavy.
  const auto store =
      collect_oddeven(16, apps::FaultSpec{apps::FaultType::DlBug, 5, -1, 7});
  ASSERT_GE(store.size(), 16u);

  std::size_t truncated = 0;
  for (const auto& key : store.keys()) {
    const auto& blob = store.blob(key);
    if (blob.truncated) ++truncated;
    const auto decoded = store.decode_tolerant(key);
    EXPECT_LE(decoded.events.size(), blob.event_count) << key.label();
    // Stack simulation: a Return must always match the innermost open Call.
    std::vector<trace::FunctionId> stack;
    for (const auto& event : decoded.events) {
      if (event.kind == trace::EventKind::Call) {
        stack.push_back(event.fid);
      } else {
        ASSERT_FALSE(stack.empty()) << key.label() << ": Return with empty call stack";
        ASSERT_EQ(stack.back(), event.fid) << key.label() << ": mismatched Return";
        stack.pop_back();
      }
    }
    // Open frames are fine (frozen mid-execution); unmatched Returns are not.
  }
  EXPECT_GT(truncated, 0u) << "the deadlocked run must freeze at least one writer";
}

TEST(WatchdogFreeze, FrozenStoreSurvivesSaveChaosSalvageRoundTrip) {
  const auto store =
      collect_oddeven(8, apps::FaultSpec{apps::FaultType::DlBug, 3, -1, 5});
  TempFile clean("frozen.dtr");
  TempFile hurt("frozen_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);

  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    const auto mutated = trace::chaos_random(archive, seed);
    trace::chaos_write_file(hurt.path, mutated.bytes);
    const auto result = trace::TraceStore::salvage(hurt.path);
    for (const auto& key : result.store.keys()) {
      const auto decoded = result.store.decode_tolerant(key);
      // Salvaged prefixes still obey the stack discipline (calls may stay
      // open, Returns never outnumber their Calls for a function).
      std::vector<trace::FunctionId> stack;
      bool balanced = true;
      for (const auto& event : decoded.events) {
        if (event.kind == trace::EventKind::Call) {
          stack.push_back(event.fid);
        } else if (stack.empty() || stack.back() != event.fid) {
          balanced = false;  // only possible on a bit-flipped (salvaged) blob
          break;
        } else {
          stack.pop_back();
        }
      }
      if (!balanced)
        EXPECT_TRUE(result.store.blob(key).salvaged)
            << mutated.description << " trace " << key.label();
    }
  }
}

// --- degraded-mode pipeline (tentpole, E3-style) -----------------------------

TEST(DegradedPipeline, CorruptedBlobStillYieldsARankingWithTheTraceFlagged) {
  const auto normal = collect_oddeven(6);
  const auto faulty_clean =
      collect_oddeven(6, apps::FaultSpec{apps::FaultType::DlBug, 2, -1, 5});

  TempFile clean("e3.dtr");
  TempFile hurt("e3_hurt.dtr");
  faulty_clean.save(clean.path);
  auto archive = trace::chaos_read_file(clean.path);

  // Corrupt exactly one per-thread blob (bit flip mid-payload of the last).
  const auto frames = walk_frames(archive);
  std::vector<Frame> blobs;
  for (const auto& frame : frames)
    if (frame.tag == kTagBlob) blobs.push_back(frame);
  ASSERT_GE(blobs.size(), 2u);
  const auto& victim = blobs.back();
  archive[(victim.offset + kFrameHeaderBytes + victim.end) / 2] ^= 0x08;
  trace::chaos_write_file(hurt.path, archive);

  const auto salvage = trace::TraceStore::salvage(hurt.path);
  ASSERT_FALSE(salvage.report.ok());
  ASSERT_EQ(salvage.report.salvaged + salvage.report.dropped, 1u);

  core::ReportConfig config;
  config.sweep.filters = {core::FilterSpec::mpi_all()};
  const auto report = core::build_report(normal, salvage.store, config);

  // The analysis still ranks traces...
  EXPECT_FALSE(report.ranking.rows.empty());
  EXPECT_FALSE(report.text.empty());
  // ...and the damaged trace is explicitly flagged, not silently absent.
  EXPECT_FALSE(report.degraded.empty());
  EXPECT_NE(report.text.find("trace health"), std::string::npos);
}

TEST(DegradedPipeline, MissingTraceIsReportedAsDropped) {
  const auto normal = collect_oddeven(4);
  auto faulty = collect_oddeven(4, apps::FaultSpec{apps::FaultType::DlBug, 1, -1, 5});

  TempFile clean("dropped.dtr");
  TempFile hurt("dropped_hurt.dtr");
  faulty.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);
  const auto mutated = trace::chaos_drop_blob(archive, 0);
  trace::chaos_write_file(hurt.path, mutated.bytes);
  const auto salvage = trace::TraceStore::salvage(hurt.path);
  ASSERT_EQ(salvage.store.size(), faulty.size() - 1);

  const core::Session session(normal, salvage.store, core::FilterSpec::mpi_all(), {});
  EXPECT_EQ(session.traces().size(), salvage.store.size());
  ASSERT_EQ(session.dropped().size(), 1u);
  EXPECT_NE(session.dropped().front().note.find("missing"), std::string::npos);

  const auto health = core::store_health(normal, salvage.store);
  ASSERT_FALSE(health.empty());
}

TEST(DegradedPipeline, FsckReportRendersPerBlobVerdicts) {
  const auto store = collect_oddeven(3);
  TempFile clean("render.dtr");
  TempFile hurt("render_hurt.dtr");
  store.save(clean.path);
  const auto archive = trace::chaos_read_file(clean.path);
  const auto mutated = trace::chaos_random(archive, 5);
  trace::chaos_write_file(hurt.path, mutated.bytes);

  const auto result = trace::TraceStore::salvage(hurt.path);
  const auto text = result.report.render();
  EXPECT_NE(text.find("Section"), std::string::npos);
  EXPECT_NE(text.find("Status"), std::string::npos);
  // Healthy archives render an all-clear via fsck as well.
  const auto healthy = trace::TraceStore::salvage(clean.path);
  EXPECT_TRUE(healthy.report.ok());
  EXPECT_EQ(healthy.report.recovered, store.size());
}

}  // namespace
}  // namespace difftrace
