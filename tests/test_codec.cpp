#include "compress/codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "util/prng.hpp"

namespace difftrace::compress {
namespace {

std::vector<Symbol> encode_decode(const std::string& codec_name, const std::vector<Symbol>& input) {
  auto codec = make_codec(codec_name);
  for (const auto s : input) codec.encoder->push(s);
  codec.encoder->flush();
  return codec.decoder->decode(codec.encoder->bytes());
}

// Workload shapes modelled on trace content.
std::vector<Symbol> make_input(const std::string& shape, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Symbol> input;
  input.reserve(n);
  if (shape == "loop") {
    const Symbol body[] = {4, 5, 9, 5};
    for (std::size_t i = 0; i < n; ++i) input.push_back(body[i % 4]);
  } else if (shape == "random") {
    for (std::size_t i = 0; i < n; ++i) input.push_back(static_cast<Symbol>(rng.below(64)));
  } else if (shape == "constant") {
    input.assign(n, 7);
  } else {  // "phases": loopy segments with occasional switches
    Symbol base = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 97 == 96) base = static_cast<Symbol>(rng.below(16)) * 8;
      input.push_back(base + static_cast<Symbol>(i % 3));
    }
  }
  return input;
}

using Param = std::tuple<std::string, std::string, std::size_t>;

class CodecRoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(CodecRoundTrip, DecodeInvertsEncode) {
  const auto& [codec_name, shape, n] = GetParam();
  const auto input = make_input(shape, n, 42);
  EXPECT_EQ(encode_decode(codec_name, input), input);
}

TEST_P(CodecRoundTrip, MidStreamFlushKeepsStreamDecodable) {
  const auto& [codec_name, shape, n] = GetParam();
  const auto input = make_input(shape, n, 43);
  auto codec = make_codec(codec_name);
  for (std::size_t i = 0; i < input.size(); ++i) {
    codec.encoder->push(input[i]);
    if (i % 13 == 0) codec.encoder->flush();  // simulates incremental trace flushes
  }
  codec.encoder->flush();
  EXPECT_EQ(codec.decoder->decode(codec.encoder->bytes()), input);
}

TEST_P(CodecRoundTrip, PrefixBeforeLastFlushIsDecodable) {
  // Crash-survivability: decoding the bytes present after a flush yields
  // exactly the symbols pushed so far.
  const auto& [codec_name, shape, n] = GetParam();
  const auto input = make_input(shape, n, 44);
  auto codec = make_codec(codec_name);
  const std::size_t cut = n / 2;
  for (std::size_t i = 0; i < cut; ++i) codec.encoder->push(input[i]);
  codec.encoder->flush();
  const auto snapshot = codec.encoder->bytes();  // copy: "the file on disk at crash time"
  const auto decoded = codec.decoder->decode(snapshot);
  EXPECT_EQ(decoded, std::vector<Symbol>(input.begin(), input.begin() + static_cast<std::ptrdiff_t>(cut)));
  // The stream continues fine afterwards.
  for (std::size_t i = cut; i < n; ++i) codec.encoder->push(input[i]);
  codec.encoder->flush();
  EXPECT_EQ(codec.decoder->decode(codec.encoder->bytes()), input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundTrip,
    ::testing::Combine(::testing::Values("parlot", "lz78", "null"),
                       ::testing::Values("loop", "random", "constant", "phases"),
                       ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                                         std::size_t{257}, std::size_t{5000})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Codec, UnknownNameThrows) { EXPECT_THROW((void)make_codec("gzip"), std::invalid_argument); }

TEST(Codec, NamesListsAllThree) {
  const auto names = codec_names();
  EXPECT_EQ(names.size(), 3u);
  for (const auto& name : names) EXPECT_NO_THROW((void)make_codec(name));
}

TEST(Codec, SymbolCountTracksPushes) {
  auto codec = make_codec("parlot");
  for (int i = 0; i < 10; ++i) codec.encoder->push(3);
  EXPECT_EQ(codec.encoder->symbol_count(), 10u);
}

TEST(ParlotCodec, LoopyInputCompressesMassively) {
  // A loop body repeated 100k times must shrink by orders of magnitude —
  // the property that makes whole-program tracing practical (ParLOT's
  // compression-ratio claim, §I).
  const auto input = make_input("loop", 100'000, 1);
  auto codec = make_codec("parlot");
  for (const auto s : input) codec.encoder->push(s);
  codec.encoder->flush();
  const double ratio = static_cast<double>(input.size() * sizeof(Symbol)) /
                       static_cast<double>(codec.encoder->bytes().size());
  EXPECT_GT(ratio, 1000.0);
}

TEST(ParlotCodec, BeatsNullOnPhasedTraces) {
  const auto input = make_input("phases", 20'000, 2);
  auto parlot = make_codec("parlot");
  auto null = make_codec("null");
  for (const auto s : input) {
    parlot.encoder->push(s);
    null.encoder->push(s);
  }
  parlot.encoder->flush();
  null.encoder->flush();
  EXPECT_LT(parlot.encoder->bytes().size() * 10, null.encoder->bytes().size());
}

TEST(Lz78Codec, MalformedPhraseIndexThrows) {
  // varint(99) varint(0): phrase 99 does not exist.
  std::vector<std::uint8_t> bogus = {99, 0};
  const auto codec = make_codec("lz78");
  EXPECT_THROW((void)codec.decoder->decode(bogus), std::runtime_error);
}

TEST(ParlotCodec, RunWithoutPredictionThrows) {
  // A run-length record before any literal means the decoder's predictor
  // cannot have a prediction: malformed.
  std::vector<std::uint8_t> bogus = {5, 0};
  const auto codec = make_codec("parlot");
  EXPECT_THROW((void)codec.decoder->decode(bogus), std::runtime_error);
}

}  // namespace
}  // namespace difftrace::compress
