// Execution engine + artifact cache: digest stability and aliasing
// resistance, the artifact frame's defect -> miss contract, pool
// parallel_for semantics (coverage, exceptions, nesting), graph ordering
// and failure propagation, and the on-disk cache (hit/miss counters,
// corruption tolerance, stats/clear/verify maintenance surface).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/artifact.hpp"
#include "sched/cache.hpp"
#include "sched/digest.hpp"
#include "sched/graph.hpp"
#include "sched/pool.hpp"

namespace difftrace::sched {
namespace {

namespace fs = std::filesystem;

// --- digest ------------------------------------------------------------------

TEST(Digest, EmptyIsOffsetBasis) {
  EXPECT_EQ(DigestBuilder().value(), 0xcbf29ce484222325ull);
}

TEST(Digest, SameInputSameValue) {
  DigestBuilder a, b;
  a.add(std::string_view("filter")).add(std::uint64_t{10}).add(true);
  b.add(std::string_view("filter")).add(std::uint64_t{10}).add(true);
  EXPECT_EQ(a.value(), b.value());
}

TEST(Digest, LengthPrefixPreventsFieldAliasing) {
  // ("ab","c") vs ("a","bc"): same concatenated bytes, different fields.
  DigestBuilder a, b;
  a.add(std::string_view("ab")).add(std::string_view("c"));
  b.add(std::string_view("a")).add(std::string_view("bc"));
  EXPECT_NE(a.value(), b.value());
}

TEST(Digest, DistinguishesValues) {
  DigestBuilder a, b, c;
  a.add(std::uint64_t{1});
  b.add(std::uint64_t{2});
  c.add(true);  // bool mixes as u64 1 -> equal to a by design
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());
}

TEST(Digest, HexIsSixteenLowercaseDigits) {
  const auto hex = DigestBuilder().add(std::string_view("x")).hex();
  ASSERT_EQ(hex.size(), 16u);
  for (const char ch : hex) EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'));
}

// --- artifact codec ----------------------------------------------------------

TEST(Artifact, PayloadRoundTrip) {
  ArtifactWriter w;
  w.put_u64(0);
  w.put_u64(1234567890123ull);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_str("hello artifact");
  w.put_str("");
  w.put_f64(-0.125);

  ArtifactReader r(w.bytes());
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.get_u64(), 1234567890123ull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_str(), "hello artifact");
  EXPECT_EQ(r.get_str(), "");
  EXPECT_EQ(r.get_f64(), -0.125);
  EXPECT_TRUE(r.at_end());
}

TEST(Artifact, ReaderThrowsOnTruncation) {
  ArtifactWriter w;
  w.put_str("a longer string than the truncated buffer holds");
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);
  ArtifactReader r(bytes);
  EXPECT_THROW((void)r.get_str(), std::out_of_range);
}

TEST(Artifact, SealOpenRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  const auto frame = seal_artifact(7, payload);
  const auto opened = open_artifact(frame, 7);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
  EXPECT_EQ(probe_artifact(frame), std::uint64_t{7});
}

TEST(Artifact, OpenRejectsEveryDefect) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  const auto frame = seal_artifact(3, payload);

  // Wrong kind.
  EXPECT_FALSE(open_artifact(frame, 4).has_value());
  // Bad magic.
  auto bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(open_artifact(bad_magic, 3).has_value());
  EXPECT_FALSE(probe_artifact(bad_magic).has_value());
  // Flipped payload bit (CRC mismatch).
  auto flipped = frame;
  flipped[frame.size() / 2] ^= 0x01;
  EXPECT_FALSE(open_artifact(flipped, 3).has_value());
  EXPECT_FALSE(probe_artifact(flipped).has_value());
  // Truncation, at every length.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const std::vector<std::uint8_t> prefix(frame.begin(), frame.begin() + static_cast<long>(n));
    EXPECT_FALSE(open_artifact(prefix, 3).has_value()) << "prefix length " << n;
  }
  // Trailing garbage.
  auto extended = frame;
  extended.push_back(0);
  EXPECT_FALSE(open_artifact(extended, 3).has_value());
}

// --- pool --------------------------------------------------------------------

TEST(Pool, ResolveJobsPrecedence) {
  EXPECT_GE(hardware_jobs(), 1u);
  ::setenv("DIFFTRACE_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5u);  // explicit beats env
  EXPECT_EQ(resolve_jobs(0), 3u);  // env beats hardware
  ::setenv("DIFFTRACE_JOBS", "junk", 1);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());  // invalid env ignored
  ::setenv("DIFFTRACE_JOBS", "0", 1);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
  ::unsetenv("DIFFTRACE_JOBS");
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    Pool pool(jobs);
    constexpr std::size_t kN = 100;
    std::vector<std::atomic<int>> seen(kN);
    pool.parallel_for(kN, [&](std::size_t i) { seen[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1) << "jobs " << jobs;
  }
}

TEST(Pool, ParallelForZeroAndOne) {
  Pool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run for n == 0"; });
  std::atomic<int> runs{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(Pool, ParallelForRethrowsBodyException) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    Pool pool(jobs);
    EXPECT_THROW(pool.parallel_for(32,
                                   [](std::size_t i) {
                                     if (i == 5) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error)
        << "jobs " << jobs;
  }
}

TEST(Pool, NestedParallelForDoesNotDeadlock) {
  Pool pool(4);
  std::atomic<int> inner_runs{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

// --- graph -------------------------------------------------------------------

TEST(Graph, SerialRunExecutesInIdOrder) {
  Pool pool(1);
  Graph graph;
  std::vector<int> order;
  const auto a = graph.add({}, [&] { order.push_back(0); });
  const auto b = graph.add({a}, [&] { order.push_back(1); });
  graph.add({a, b}, [&] { order.push_back(2); });
  graph.run(pool, "test");
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Graph, RejectsForwardDependencies) {
  Graph graph;
  EXPECT_THROW((void)graph.add({0}, [] {}), std::invalid_argument);
}

TEST(Graph, ParallelRunHonorsDependencies) {
  Pool pool(4);
  Graph graph;
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int id) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const auto root = graph.add({}, [&] { record(0); });
  for (int i = 1; i <= 6; ++i) graph.add({root}, [&, i] { record(i); });
  graph.run(pool, "test");
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.front(), 0);  // the root strictly precedes its dependents
  EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 7u);
}

TEST(Graph, FailureSkipsDependentsRunsRestAndRethrowsFirst) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    Pool pool(jobs);
    Graph graph;
    std::atomic<int> independent_runs{0};
    std::atomic<int> dependent_runs{0};
    const auto bad = graph.add({}, [] { throw std::runtime_error("task failed"); });
    graph.add({bad}, [&] { dependent_runs.fetch_add(1); });
    graph.add({}, [&] { independent_runs.fetch_add(1); });
    EXPECT_THROW(graph.run(pool, "test"), std::runtime_error) << "jobs " << jobs;
    EXPECT_EQ(dependent_runs.load(), 0) << "jobs " << jobs;
    EXPECT_EQ(independent_runs.load(), 1) << "jobs " << jobs;
  }
}

// --- cache -------------------------------------------------------------------

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("difftrace-sched-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(Cache, MissThenHitRoundTrip) {
  TempDir dir;
  Cache cache(dir.path);
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  EXPECT_FALSE(cache.lookup("00112233aabbccdd", 1).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.store("00112233aabbccdd", 1, payload);
  const auto found = cache.lookup("00112233aabbccdd", 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, payload);
  EXPECT_EQ(cache.hits(), 1u);
  // Same key, different kind: defect contract says miss.
  EXPECT_FALSE(cache.lookup("00112233aabbccdd", 2).has_value());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, CorruptedEntriesAreMissesNeverErrors) {
  TempDir dir;
  Cache cache(dir.path);
  cache.store("1111111111111111", 1, std::vector<std::uint8_t>{1, 2, 3});
  cache.store("2222222222222222", 1, std::vector<std::uint8_t>{4, 5, 6});

  // Bit-flip one entry, truncate the other.
  {
    std::fstream f(dir.path / "1111111111111111.dta",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    f.put('\xff');
  }
  fs::resize_file(dir.path / "2222222222222222.dta", 3);

  EXPECT_FALSE(cache.lookup("1111111111111111", 1).has_value());
  EXPECT_FALSE(cache.lookup("2222222222222222", 1).has_value());
  EXPECT_EQ(cache.misses(), 2u);

  const auto report = cache.verify();
  EXPECT_EQ(report.checked, 2u);
  EXPECT_EQ(report.bad, 2u);
  ASSERT_EQ(report.bad_entries.size(), 2u);
  EXPECT_EQ(report.bad_entries[0], "1111111111111111.dta");

  // Recompute-and-overwrite heals the entry.
  cache.store("1111111111111111", 1, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_TRUE(cache.lookup("1111111111111111", 1).has_value());
}

TEST(Cache, StatsClearVerify) {
  TempDir dir;
  Cache cache(dir.path);
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.store("aaaaaaaaaaaaaaaa", 1, std::vector<std::uint8_t>(100, 7));
  cache.store("bbbbbbbbbbbbbbbb", 2, std::vector<std::uint8_t>(10, 8));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 110u);  // payloads plus framing
  const auto report = cache.verify();
  EXPECT_EQ(report.checked, 2u);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Cache, StoreIntoReadOnlyDirectoryDegradesToPassThrough) {
  if (::getuid() == 0) GTEST_SKIP() << "root ignores directory write bits";
  TempDir dir;
  Cache cache(dir.path);
  fs::permissions(dir.path, fs::perms::owner_read | fs::perms::owner_exec);
  cache.store("cccccccccccccccc", 1, std::vector<std::uint8_t>{1});  // must not throw
  fs::permissions(dir.path, fs::perms::owner_all);
  EXPECT_FALSE(cache.lookup("cccccccccccccccc", 1).has_value());
}

// Regression pins for the lock contracts the thread-safety annotations
// prove (PR 5 audit: no latent guarded-access bug found, so the proven
// behaviour is pinned instead).

// Contract: Pool::~Pool sets stop_ under the mutex and workers re-check the
// queue after waking, so every tick posted before destruction runs — stop
// drains, it does not discard; and no worker sleeps through the shutdown
// notify (the dtor would hang in join).
TEST(Pool, DestructorDrainsEveryPostedTick) {
  std::atomic<int> ran{0};
  {
    Pool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.post("drain", [&ran] { ran.fetch_add(1); });
    }
  }  // destructor joins here
  EXPECT_EQ(ran.load(), 200);
}

// Contract: shutdown with idle (sleeping) workers cannot lose the wakeup —
// stop_ is written under the same mutex the workers' wait predicate reads,
// so a worker is either awake and sees stop_, or asleep and gets the
// notify. Many iterations make a lost-wakeup hang all but certain to bite.
TEST(Pool, IdleShutdownNeverLosesTheStopWakeup) {
  for (int i = 0; i < 100; ++i) {
    Pool pool(4);  // workers go to sleep on the empty queue
  }                // dtor must always join promptly
  SUCCEED();
}

// Contract: every lookup() increments exactly one of hits_/misses_ on every
// path — absent entry, present entry, and defective entry (corruption is a
// counted miss, not an error).
TEST(Cache, EveryLookupOutcomeCountsExactlyOnce) {
  TempDir dir;
  Cache cache(dir.path);
  const std::string key = DigestBuilder().add(std::uint64_t{42}).hex();
  EXPECT_FALSE(cache.lookup(key, 1).has_value());  // absent -> miss
  cache.store(key, 1, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_TRUE(cache.lookup(key, 1).has_value());  // present -> hit
  {
    std::ofstream out(dir.path / (key + ".dta"), std::ios::trunc | std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(cache.lookup(key, 1).has_value());  // defective -> miss
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

// The opt-in hot layer (retain_hot) serves repeat lookups from memory: same
// bytes, same hit accounting, no disk dependence once pinned. Off by default.
TEST(Cache, RetainHotServesFromMemoryWithIdenticalBytes) {
  TempDir dir;
  Cache cache(dir.path);
  EXPECT_EQ(cache.hot_entries(), 0u);  // disabled until opted in

  cache.retain_hot(2);
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  cache.store("aaaaaaaaaaaaaaaa", 1, payload);
  EXPECT_EQ(cache.hot_entries(), 1u);  // store() pins fresh payloads

  // Remove the backing file: a pinned entry must still hit, byte-identical.
  fs::remove(dir.path / "aaaaaaaaaaaaaaaa.dta");
  const auto found = cache.lookup("aaaaaaaaaaaaaaaa", 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, payload);
  EXPECT_EQ(cache.hits(), 1u);

  // Wrong kind never aliases through the memo: defect contract says miss.
  EXPECT_FALSE(cache.lookup("aaaaaaaaaaaaaaaa", 2).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  // LRU eviction at capacity 2: inserting two more evicts "aaaa..." (its
  // backing file is already gone, so the eviction shows up as a miss).
  cache.store("bbbbbbbbbbbbbbbb", 1, payload);
  cache.store("cccccccccccccccc", 1, payload);
  EXPECT_EQ(cache.hot_entries(), 2u);
  fs::remove(dir.path / "cccccccccccccccc.dta");
  EXPECT_TRUE(cache.lookup("cccccccccccccccc", 1).has_value());  // still pinned
  EXPECT_FALSE(cache.lookup("aaaaaaaaaaaaaaaa", 1).has_value());  // evicted + gone

  // A disk hit re-pins: lookup through the file populates the memo.
  cache.store("dddddddddddddddd", 1, payload);
  cache.retain_hot(0);  // disable drops everything pinned
  EXPECT_EQ(cache.hot_entries(), 0u);
  cache.retain_hot(2);
  EXPECT_TRUE(cache.lookup("dddddddddddddddd", 1).has_value());  // from disk
  fs::remove(dir.path / "dddddddddddddddd.dta");
  EXPECT_TRUE(cache.lookup("dddddddddddddddd", 1).has_value());  // now pinned

  // clear() empties the hot layer too: nothing survives it.
  cache.clear();
  EXPECT_EQ(cache.hot_entries(), 0u);
  EXPECT_FALSE(cache.lookup("dddddddddddddddd", 1).has_value());

  EXPECT_EQ(cache.hits() + cache.misses(), 7u);  // invariant holds throughout
}

TEST(Cache, ConcurrentLookupStoreIsSafe) {
  TempDir dir;
  Cache cache(dir.path);
  Pool pool(8);
  pool.parallel_for(64, [&](std::size_t i) {
    const std::string key = DigestBuilder().add(static_cast<std::uint64_t>(i % 8)).hex();
    if (!cache.lookup(key, 1).has_value())
      cache.store(key, 1, std::vector<std::uint8_t>{static_cast<std::uint8_t>(i % 8)});
  });
  EXPECT_EQ(cache.stats().entries, 8u);
  EXPECT_EQ(cache.hits() + cache.misses(), 64u);
}

}  // namespace
}  // namespace difftrace::sched
