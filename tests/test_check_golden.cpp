// Golden verdict tests for `difftrace check`: each injected fault family
// from the paper's studied bugs must produce the right diagnostics at the
// right rank/function, normal runs must verify clean, and chaos-damaged
// archives must degrade to warnings instead of crashing the checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "analyze/analyze.hpp"
#include "apps/ilcs.hpp"
#include "apps/lulesh.hpp"
#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "cli/commands.hpp"
#include "core/report.hpp"
#include "trace/chaos.hpp"

namespace difftrace {
namespace {

using analyze::CheckReport;
using analyze::Severity;

simmpi::WorldConfig fast_world(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  return config;
}

trace::TraceStore trace_odd_even(apps::FaultSpec fault, int nranks = 4) {
  apps::OddEvenConfig config;
  config.nranks = nranks;
  config.elements_per_rank = 8;
  config.fault = fault;
  auto run = apps::run_traced(fast_world(nranks),
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); });
  return std::move(run.store);
}

trace::TraceStore trace_ilcs(apps::FaultSpec fault) {
  apps::IlcsConfig config;
  config.nranks = 4;
  config.workers = 3;
  config.ncities = 12;
  config.fault = fault;
  auto run = apps::run_traced(fast_world(config.nranks),
                              [config](simmpi::Comm& c) { apps::ilcs_rank(c, config); });
  return std::move(run.store);
}

trace::TraceStore trace_lulesh(apps::FaultSpec fault) {
  apps::LuleshConfig config;
  config.nranks = 4;
  config.omp_threads = 2;
  config.elements_per_rank = 12;
  config.cycles = 3;
  config.fault = fault;
  auto run = apps::run_traced(fast_world(config.nranks),
                              [config](simmpi::Comm& c) { apps::lulesh_rank(c, config); });
  return std::move(run.store);
}

std::size_t count_rule(const CheckReport& report, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [rule](const analyze::Diagnostic& d) { return d.rule == rule; }));
}

const analyze::Diagnostic* find_rule(const CheckReport& report, std::string_view rule) {
  for (const auto& d : report.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

// --- oddeven ------------------------------------------------------------------

TEST(CheckGolden, OddEvenNormalRunIsClean) {
  const auto store = trace_odd_even({});
  const auto report = analyze::run_checks(store);
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(CheckGolden, OddEvenDeadlockNamesCycleRanksAndFunction) {
  // DlBug at rank 1: its partner exchange breaks, ranks 1 and 2 end up in
  // mutual MPI_Recv, and everyone else starves behind them.
  const auto store = trace_odd_even({apps::FaultType::DlBug, 1, -1, 1});
  const auto report = analyze::run_checks(store);
  EXPECT_EQ(report.exit_code(), 1);

  ASSERT_GE(count_rule(report, "mpi.deadlock-cycle"), 1u) << report.render();
  const auto* cycle = find_rule(report, "mpi.deadlock-cycle");
  EXPECT_EQ(cycle->severity, Severity::Error);
  EXPECT_EQ(cycle->function, "MPI_Recv");
  EXPECT_NE(cycle->message.find("rank 1"), std::string::npos);
  EXPECT_NE(cycle->message.find("rank 2"), std::string::npos);
  EXPECT_NE(cycle->path.find("oddEvenSort > "), std::string::npos);

  // The blocked-rank evidence names the exact rank, function, and peer.
  const auto* recv = find_rule(report, "mpi.unmatched-recv");
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->severity, Severity::Error);
  EXPECT_EQ(recv->function, "MPI_Recv");
}

// --- ilcs ---------------------------------------------------------------------

TEST(CheckGolden, IlcsNormalRunIsClean) {
  const auto store = trace_ilcs({});
  const auto report = analyze::run_checks(store);
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(CheckGolden, IlcsWrongCollectiveSizeFlagsTheFaultyRank) {
  const auto store = trace_ilcs({apps::FaultType::WrongCollectiveSize, 2, -1, -1});
  const auto report = analyze::run_checks(store);
  EXPECT_EQ(report.exit_code(), 1);
  ASSERT_GE(count_rule(report, "mpi.collective-mismatch"), 1u) << report.render();
  const auto* d = find_rule(report, "mpi.collective-mismatch");
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->where.proc, 2);  // majority voting isolates the dissenter
  EXPECT_NE(d->message.find("rank 2"), std::string::npos);
}

TEST(CheckGolden, IlcsWrongCollectiveOpIsSilentWarning) {
  // The paper's silent fault: the job completes, results diverge. No error
  // — but the checker still flags the divergent reduction op.
  const auto store = trace_ilcs({apps::FaultType::WrongCollectiveOp, 0, -1, -1});
  const auto report = analyze::run_checks(store);
  EXPECT_EQ(report.errors(), 0u) << report.render();
  ASSERT_GE(count_rule(report, "mpi.collective-op-mismatch"), 1u) << report.render();
  const auto* d = find_rule(report, "mpi.collective-op-mismatch");
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->where.proc, 0);
  EXPECT_EQ(report.exit_code(), 3);
}

// --- lulesh -------------------------------------------------------------------

TEST(CheckGolden, LuleshNormalRunIsClean) {
  const auto store = trace_lulesh({});
  const auto report = analyze::run_checks(store);
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(CheckGolden, LuleshSkippedPhaseImplicatesRankTwo) {
  const auto store = trace_lulesh({apps::FaultType::SkipLagrangeLeapFrog, 2, -1, -1});
  const auto report = analyze::run_checks(store);
  EXPECT_EQ(report.exit_code(), 1);
  // Rank 2 stops participating; the errors must point at it — either
  // anchored there or naming it as the rank everyone waits on.
  const bool rank2_implicated = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(), [](const analyze::Diagnostic& d) {
        return d.severity == Severity::Error &&
               (d.where.proc == 2 || d.message.find("rank 2") != std::string::npos);
      });
  EXPECT_TRUE(rank2_implicated) << report.render();
}

// --- damaged archives ---------------------------------------------------------

TEST(CheckGolden, ChaosSalvagedArchivesNeverErrorOnACleanRun) {
  // A clean run's archive, randomly damaged: whatever survives salvage must
  // check without crashing, and damage alone must never manufacture an
  // error-severity verdict — missing evidence caps at warning.
  const auto store = trace_odd_even({});
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "difftrace_check_chaos_src.dtr";
  store.save(path);
  const auto archive = trace::chaos_read_file(path);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto corrupted = trace::chaos_random(archive, seed);
    const auto bad_path = dir / "difftrace_check_chaos_bad.dtr";
    trace::chaos_write_file(bad_path, corrupted.bytes);
    const auto result = trace::TraceStore::salvage(bad_path);
    const auto report = analyze::run_checks(result.store);
    EXPECT_EQ(report.errors(), 0u)
        << "seed " << seed << " (" << corrupted.description << "):\n" << report.render();
    std::filesystem::remove(bad_path);
  }
  std::filesystem::remove(path);
}

TEST(CheckGolden, TruncatedDeadlockArchiveStillChecksWithoutCrashing) {
  const auto store = trace_odd_even({apps::FaultType::DlBug, 1, -1, 1});
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "difftrace_check_trunc.dtr";
  store.save(path);
  auto archive = trace::chaos_read_file(path);
  const auto torn = trace::chaos_inject(archive, trace::ChaosFault::Truncate, 3);
  trace::chaos_write_file(path, torn.bytes);
  const auto result = trace::TraceStore::salvage(path);
  std::filesystem::remove(path);
  // Whatever survived, the checker must complete and produce a report.
  const auto report = analyze::run_checks(result.store);
  EXPECT_EQ(report.streams_checked, result.store.size());
}

// --- CLI and report integration -----------------------------------------------

TEST(CheckGolden, CliCheckCommandExitCodesAndListing) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto normal_path = (dir / "difftrace_check_cli_normal.dtr").string();
  const auto faulty_path = (dir / "difftrace_check_cli_faulty.dtr").string();
  trace_odd_even({}).save(normal_path);
  trace_odd_even({apps::FaultType::DlBug, 1, -1, 1}).save(faulty_path);

  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(cli::run_command({"check", normal_path}, out, err), 0);
  EXPECT_NE(out.str().find("0 error(s)"), std::string::npos);

  out.str("");
  EXPECT_EQ(cli::run_command({"check", faulty_path}, out, err), 1);
  EXPECT_NE(out.str().find("mpi.deadlock-cycle"), std::string::npos);
  EXPECT_NE(out.str().find("MPI_Recv"), std::string::npos);

  out.str("");
  EXPECT_EQ(cli::run_command({"check", faulty_path, "--checkers", "locks"}, out, err), 0);

  out.str("");
  EXPECT_EQ(cli::run_command({"check", "--list"}, out, err), 0);
  for (const auto* name : {"stream", "mpi", "locks"})
    EXPECT_NE(out.str().find(name), std::string::npos);

  // An unknown checker fails plainly (exit 1) and names the valid ones.
  out.str("");
  err.str("");
  EXPECT_EQ(cli::run_command({"check", faulty_path, "--checkers", "bogus"}, out, err), 1);
  EXPECT_NE(err.str().find("unknown checker 'bogus'"), std::string::npos);
  for (const auto* name : {"stream", "mpi", "locks"})
    EXPECT_NE(err.str().find(name), std::string::npos);

  std::filesystem::remove(normal_path);
  std::filesystem::remove(faulty_path);
}

TEST(CheckGolden, ReportEmbedsSemanticFindingsAndCorroboratesTriage) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::DlBug, 1, -1, 1});
  core::ReportConfig config;
  config.sweep.filters = {core::FilterSpec::mpi_all()};
  const auto report = core::build_report(normal, faulty, config);

  EXPECT_EQ(report.check.exit_code(), 1);
  const auto& text = report.text;
  EXPECT_NE(text.find("--- semantic check (faulty run) ---"), std::string::npos);
  EXPECT_NE(text.find("mpi.deadlock-cycle"), std::string::npos);
  // The triage evidence cites the checker's finding for its focus trace.
  EXPECT_NE(text.find("semantic check"), std::string::npos);
  EXPECT_EQ(report.triage.bug_class, core::BugClass::Hang);
}

}  // namespace
}  // namespace difftrace
