#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace difftrace::util {
namespace {

// --- str -----------------------------------------------------------------

TEST(Str, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Str, SplitKeepsEmptySegments) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Str, SplitEmptyStringGivesOneEmpty) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Str, JoinInvertsSplit) {
  EXPECT_EQ(join({"x", "y", "z"}, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(starts_with("MPI_Send", "MPI_"));
  EXPECT_FALSE(starts_with("GOMP_x", "MPI_"));
  EXPECT_TRUE(ends_with("foo@plt", "@plt"));
  EXPECT_FALSE(ends_with("plt", "@plt"));
}

TEST(Str, ContainsInsensitive) {
  EXPECT_TRUE(contains_insensitive("TracedMemCpy", "memcpy"));
  EXPECT_TRUE(contains_insensitive("abc", ""));
  EXPECT_FALSE(contains_insensitive("ab", "abc"));
}

TEST(Str, ToLower) { EXPECT_EQ(to_lower("MPI_Send"), "mpi_send"); }

TEST(Str, FormatDouble) {
  EXPECT_EQ(format_double(0.2444, 3), "0.244");
  EXPECT_EQ(format_double(1.0, 1), "1.0");
}

// --- stats -----------------------------------------------------------------

TEST(Stats, EmptySamples) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, KnownValues) {
  const double data[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(data);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.total, 40.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
}

TEST(Stats, SingleSampleHasZeroStddev) {
  const double data[] = {3.0};
  EXPECT_DOUBLE_EQ(summarize(data).stddev, 0.0);
}

// --- prng ---------------------------------------------------------------------

TEST(Prng, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

// --- table -----------------------------------------------------------------------

TEST(TextTable, RendersAlignedCells) {
  TextTable t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, ThrowsOnCellCountMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, ThrowsOnEmptyHeader) { EXPECT_THROW(TextTable({}), std::invalid_argument); }

TEST(Heatmap, RendersShades) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 0.0;
  const auto s = render_heatmap(m, "title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("██"), std::string::npos);
}

// --- status_line ---------------------------------------------------------

TEST(StatusLine, AppendsNewlineAndWritesText) {
  std::ostringstream out;
  status_line(out, "[stage] something happened");
  EXPECT_EQ(out.str(), "[stage] something happened\n");
}

TEST(StatusLine, ConcurrentWritersNeverTearLines) {
  // Each thread writes a run of single-character lines; any interleaving
  // inside a line (e.g. "aab\nb\n") would produce a mixed line. 8 threads ×
  // 200 lines is enough to tear reliably without the mutex.
  std::ostringstream out;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&out, t] {
      const std::string text(10, static_cast<char>('a' + t));
      for (int i = 0; i < kLines; ++i) status_line(out, text);
    });
  for (auto& thread : threads) thread.join();

  std::istringstream in(out.str());
  std::string line;
  std::map<char, int> seen;
  int total = 0;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.size(), 10u) << "torn line: '" << line << "'";
    ASSERT_EQ(line, std::string(10, line[0])) << "mixed line: '" << line << "'";
    ++seen[line[0]];
    ++total;
  }
  EXPECT_EQ(total, kThreads * kLines);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(seen[static_cast<char>('a' + t)], kLines);
}

}  // namespace
}  // namespace difftrace::util
