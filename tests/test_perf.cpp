// Performance observability: histogram percentiles, chrome/csv exporters
// (manifest layout and self-trace worker-id canonicalization), and the
// noise-aware manifest differ behind `difftrace perf diff`.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perfdiff.hpp"
#include "trace/registry.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"

namespace difftrace::obs {
namespace {

// --- percentiles -------------------------------------------------------------

TEST(Percentiles, EmptySnapshotIsZeroAndQIsClamped) {
  Histogram::Snapshot empty;
  EXPECT_DOUBLE_EQ(histogram_percentile(empty, 0.5), 0.0);

  Histogram h;
  h.record(100);
  const auto snap = h.snapshot();
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(histogram_percentile(snap, -1.0), histogram_percentile(snap, 0.0));
  EXPECT_DOUBLE_EQ(histogram_percentile(snap, 2.0), histogram_percentile(snap, 1.0));
}

TEST(Percentiles, SingleSampleReportsItsBucketMidpoint) {
  Histogram h;
  h.record(100);  // bucket [64, 128)
  const auto snap = h.snapshot();
  const double p50 = histogram_percentile(snap, 0.5);
  EXPECT_DOUBLE_EQ(p50, 96.0);  // (64 + 128) / 2
  // Every quantile of a one-sample histogram is that sample's bucket.
  EXPECT_DOUBLE_EQ(histogram_percentile(snap, 0.99), p50);
}

TEST(Percentiles, ZeroBucketAndSpreadAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(0);
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket [512, 1024)
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(histogram_percentile(snap, 0.5), 0.0);
  const double p99 = histogram_percentile(snap, 0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(Percentiles, MonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1024; v *= 2) h.record(v);
  const auto snap = h.snapshot();
  double last = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = histogram_percentile(snap, q);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(Percentiles, TopBucketDoesNotOverflow) {
  Histogram h;
  h.record(~std::uint64_t{0});  // bucket 64: lb = 2^63, no 2^64 upper bound
  const auto snap = h.snapshot();
  const double p50 = histogram_percentile(snap, 0.5);
  EXPECT_GE(p50, 9.2e18);  // >= 2^63
  EXPECT_LT(p50, 1.9e19);  // < 2^64: the synthetic ub stayed finite
}

// --- perf diff ---------------------------------------------------------------

RunManifest manifest_with(std::vector<std::pair<std::string, std::uint64_t>> phases) {
  RunManifest m;
  m.command = {"rank", "a.dtrc", "b.dtrc"};
  std::uint64_t total = 0;
  for (auto& [path, wall] : phases) {
    const auto slash = path.rfind('/');
    const auto name = slash == std::string::npos ? path : path.substr(slash + 1);
    const auto depth = static_cast<std::size_t>(std::count(path.begin(), path.end(), '/'));
    m.phases.push_back({path, name, depth, 1, wall, wall});
    if (depth == 0) total += wall;
  }
  m.wall_ns = total;
  return m;
}

TEST(PerfDiff, NoiseUnderBothThresholdsIsUnchanged) {
  // 10ms -> 11ms: 10% relative, over the 1ms floor but under the 25% gate.
  const auto base = manifest_with({{"rank", 10'000'000}});
  const auto head = manifest_with({{"rank", 11'000'000}});
  const auto report = diff_manifests(base, head);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].verdict, PhaseVerdict::Unchanged);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(PerfDiff, LargeRelativeButTinyAbsoluteIsUnchanged) {
  // 3x slowdown on a 100us phase: the absolute floor absorbs it.
  const auto base = manifest_with({{"rank", 100'000}});
  const auto head = manifest_with({{"rank", 300'000}});
  const auto report = diff_manifests(base, head);
  EXPECT_EQ(report.phases[0].verdict, PhaseVerdict::Unchanged);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(PerfDiff, TwoXSlowdownRegressesWithExitThree) {
  const auto base = manifest_with({{"rank", 10'000'000}, {"rank/load", 2'000'000}});
  const auto head = manifest_with({{"rank", 20'000'000}, {"rank/load", 2'100'000}});
  const auto report = diff_manifests(base, head);
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].verdict, PhaseVerdict::Regressed);  // map order: "rank" first
  EXPECT_NEAR(report.phases[0].ratio(), 2.0, 1e-9);
  EXPECT_EQ(report.phases[1].verdict, PhaseVerdict::Unchanged);
  EXPECT_TRUE(report.regressed());
  EXPECT_EQ(report.exit_code(), 3);
  EXPECT_NE(report.render().find("REGRESSED"), std::string::npos);
}

TEST(PerfDiff, SpeedupIsImprovedAndDoesNotGate) {
  const auto base = manifest_with({{"rank", 20'000'000}});
  const auto head = manifest_with({{"rank", 10'000'000}});
  const auto report = diff_manifests(base, head);
  EXPECT_EQ(report.phases[0].verdict, PhaseVerdict::Improved);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(PerfDiff, StructuralChangesAreAddedRemovedNeverGate) {
  const auto base = manifest_with({{"rank", 10'000'000}, {"rank/old", 5'000'000}});
  const auto head = manifest_with({{"rank", 10'000'000}, {"rank/new", 5'000'000}});
  const auto report = diff_manifests(base, head);
  ASSERT_EQ(report.phases.size(), 3u);  // rank, rank/new, rank/old (path order)
  EXPECT_EQ(report.phases[1].path, "rank/new");
  EXPECT_EQ(report.phases[1].verdict, PhaseVerdict::Added);
  EXPECT_EQ(report.phases[2].path, "rank/old");
  EXPECT_EQ(report.phases[2].verdict, PhaseVerdict::Removed);
  EXPECT_EQ(report.count(PhaseVerdict::Added), 1u);
  EXPECT_EQ(report.count(PhaseVerdict::Removed), 1u);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(PerfDiff, ThresholdsAreConfigurable) {
  const auto base = manifest_with({{"rank", 10'000'000}});
  const auto head = manifest_with({{"rank", 11'000'000}});
  PerfDiffOptions strict;
  strict.rel_threshold = 0.05;
  strict.abs_floor_ns = 0;
  const auto report = diff_manifests(base, head, strict);
  EXPECT_EQ(report.phases[0].verdict, PhaseVerdict::Regressed);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(PerfDiff, CountersKeepOnlyDiffering) {
  auto base = manifest_with({{"rank", 10'000'000}});
  auto head = manifest_with({{"rank", 10'000'000}});
  base.counters.push_back({"same.counter", 5});
  head.counters.push_back({"same.counter", 5});
  base.counters.push_back({"drifted.counter", 10});
  head.counters.push_back({"drifted.counter", 12});
  head.counters.push_back({"new.counter", 1});
  const auto report = diff_manifests(base, head);
  ASSERT_EQ(report.counters.size(), 2u);
  EXPECT_EQ(report.counters[0].name, "drifted.counter");
  EXPECT_EQ(report.counters[0].base, 10u);
  EXPECT_EQ(report.counters[0].head, 12u);
  EXPECT_EQ(report.counters[1].name, "new.counter");
  EXPECT_EQ(report.counters[1].base, 0u);
}

TEST(PerfDiff, JsonOutputCarriesVerdictAndSchema) {
  const auto base = manifest_with({{"rank", 10'000'000}});
  const auto head = manifest_with({{"rank", 25'000'000}});
  const auto report = diff_manifests(base, head, {}, "base.json", "head.json");
  std::ostringstream json;
  report.write_json(json);
  const auto text = json.str();
  EXPECT_NE(text.find("\"perfdiff_version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"base\": \"base.json\""), std::string::npos);
  EXPECT_NE(text.find("\"verdict\": \"regressed\""), std::string::npos);
  EXPECT_NE(text.find("\"exit_code\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"path\": \"rank\""), std::string::npos);
}

// --- manifest chrome/csv export ----------------------------------------------

RunManifest export_sample() {
  auto m = manifest_with(
      {{"rank", 10'000'000}, {"rank/load", 2'000'000}, {"rank/sweep", 7'000'000}});
  m.counters.push_back({"nlr.tokens_in", 168});
  HistogramSample h;
  h.name = "span.rank/load";
  h.data.count = 1;
  h.data.sum = 2'000'000;
  h.data.buckets[Histogram::bucket_index(2'000'000)] = 1;
  m.histograms.push_back(h);
  return m;
}

TEST(ManifestExport, ChromeLayoutNestsChildrenUnderParentStart) {
  std::ostringstream out;
  export_manifest_chrome(export_sample(), out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
  // Timestamps are exact decimal microseconds: root at 0, load at 0, and
  // sweep laid out after load's 2ms (= 2000us).
  EXPECT_NE(text.find("\"name\": \"rank\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\": 10000.000"), std::string::npos);
  EXPECT_NE(text.find("\"ts\": 2000.000"), std::string::npos);
  // The histogram rode along as percentile args.
  EXPECT_NE(text.find("\"p50_ns\""), std::string::npos);
  // Counters attach to the root phase only.
  EXPECT_NE(text.find("\"nlr.tokens_in\": 168"), std::string::npos);
}

TEST(ManifestExport, ChromeOutputIsValidJsonShape) {
  std::ostringstream out;
  export_manifest_chrome(export_sample(), out);
  const auto text = out.str();
  // Cheap structural sanity without a parser dependency: balanced braces
  // and the stream ends with the closing object + newline.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ManifestExport, CsvListsEveryPhaseWithPercentileColumns) {
  std::ostringstream out;
  export_manifest_csv(export_sample(), out);
  const auto text = out.str();
  EXPECT_NE(text.find("path,name,depth,count,wall_ns,cpu_ns,p50_ns,p95_ns,p99_ns"),
            std::string::npos);
  EXPECT_NE(text.find("rank/load,load,1,1,2000000,2000000,"), std::string::npos);
  // Phases without a histogram leave the percentile cells empty.
  EXPECT_NE(text.find("rank/sweep,sweep,1,1,7000000,7000000,,,"), std::string::npos);
}

TEST(ManifestExport, ParsesFormatNames) {
  EXPECT_EQ(parse_export_format("chrome"), ExportFormat::Chrome);
  EXPECT_EQ(parse_export_format("csv"), ExportFormat::Csv);
  EXPECT_FALSE(parse_export_format("svg").has_value());
}

// --- self-trace export -------------------------------------------------------

/// Builds a synthetic self-trace store: stream contents are given as
/// (kind, name) pairs, keyed in the order supplied — so tests can model the
/// stream-index race by permuting the order while keeping content fixed.
trace::TraceStore make_selftrace(
    const std::vector<std::vector<std::pair<trace::EventKind, std::string>>>& streams) {
  auto registry = std::make_shared<trace::FunctionRegistry>();
  trace::TraceStore store(registry);
  int index = 0;
  for (const auto& events : streams) {
    trace::TraceWriter writer({0, index++});
    for (const auto& [kind, name] : events) writer.record(kind, registry->intern(name));
    store.absorb(writer);
  }
  return store;
}

using trace::EventKind;

std::vector<std::pair<EventKind, std::string>> main_stream() {
  return {{EventKind::Call, "sweep"},
          {EventKind::Call, "load"},
          {EventKind::Return, "load"},
          {EventKind::Return, "sweep"}};
}

std::vector<std::pair<EventKind, std::string>> worker_stream(int id, int cells) {
  std::vector<std::pair<EventKind, std::string>> events;
  events.push_back({EventKind::Call, "worker" + std::to_string(id)});
  for (int i = 0; i < cells; ++i) {
    events.push_back({EventKind::Call, "cell"});
    events.push_back({EventKind::Return, "cell"});
  }
  events.push_back({EventKind::Return, "worker" + std::to_string(id)});
  return events;
}

TEST(SelfTraceExport, ByteIdenticalUnderScrambledStreamOrder) {
  // The same workload, with the per-thread streams registered in three
  // different racy orders (what varying DIFFTRACE_JOBS scheduling does).
  const auto a = make_selftrace({main_stream(), worker_stream(0, 2), worker_stream(1, 3)});
  const auto b = make_selftrace({worker_stream(1, 3), main_stream(), worker_stream(0, 2)});
  const auto c = make_selftrace({worker_stream(0, 2), worker_stream(1, 3), main_stream()});

  std::ostringstream ja, jb, jc;
  export_selftrace_chrome(a, ja);
  export_selftrace_chrome(b, jb);
  export_selftrace_chrome(c, jc);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ja.str(), jc.str());

  std::ostringstream ca, cb;
  export_selftrace_csv(a, ca);
  export_selftrace_csv(b, cb);
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(SelfTraceExport, LanesAreMainFirstThenWorkersById) {
  const auto store = make_selftrace({worker_stream(3, 1), worker_stream(0, 1), main_stream()});
  std::ostringstream out;
  export_selftrace_chrome(store, out);
  const auto text = out.str();
  const auto main_pos = text.find("\"name\": \"main\"");
  const auto w0_pos = text.find("\"name\": \"pool worker 0\"");
  const auto w3_pos = text.find("\"name\": \"pool worker 3\"");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(w0_pos, std::string::npos);
  ASSERT_NE(w3_pos, std::string::npos);
  EXPECT_LT(main_pos, w0_pos);
  EXPECT_LT(w0_pos, w3_pos);
  // Stream keys are canonicalized away: the racy {proc, thread} indices the
  // store used must not leak into the export.
  EXPECT_EQ(text.find("\"0.2\""), std::string::npos);
}

TEST(SelfTraceExport, LogicalClockAndNesting) {
  const auto store = make_selftrace({main_stream()});
  std::ostringstream out;
  export_selftrace_csv(store, out);
  // sweep opens at tick 0 and closes at tick 3 (dur 3, depth 0); load spans
  // ticks 1..2 (dur 1, depth 1).
  EXPECT_EQ(out.str(),
            "tid,ts,dur,depth,name,unclosed\n"
            "0,0,3,0,sweep,0\n"
            "0,1,1,1,load,0\n");
}

TEST(SelfTraceExport, UnclosedSpansAreSynthesizedAndFlagged) {
  // A stream frozen mid-span (watchdog kill): Call without Return.
  const auto store = make_selftrace({{{EventKind::Call, "sweep"}, {EventKind::Call, "cell"}}});
  std::ostringstream out;
  export_selftrace_chrome(store, out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"unclosed\": true"), std::string::npos);
  // Both spans were closed at the final tick.
  EXPECT_NE(text.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"cell\""), std::string::npos);
}

}  // namespace
}  // namespace difftrace::obs
