#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/ilcs.hpp"
#include "apps/lulesh.hpp"
#include "apps/oddeven.hpp"
#include "apps/tsp.hpp"

namespace difftrace::apps {
namespace {

simmpi::WorldConfig fast_world() {
  simmpi::WorldConfig config;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(20'000);
  return config;
}

// --- odd/even sort ----------------------------------------------------------

std::vector<std::int32_t> flatten(const std::vector<std::vector<std::int32_t>>& blocks) {
  std::vector<std::int32_t> all;
  for (const auto& block : blocks) all.insert(all.end(), block.begin(), block.end());
  return all;
}

TEST(OddEven, SortsGlobally) {
  OddEvenConfig config;
  config.nranks = 8;
  config.elements_per_rank = 32;
  std::vector<std::vector<std::int32_t>> result(8);
  config.result_sink = &result;
  const auto report = run_odd_even(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  const auto all = flatten(result);
  EXPECT_EQ(all.size(), 8u * 32u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(OddEven, SingleRankTrivial) {
  OddEvenConfig config;
  config.nranks = 1;
  config.elements_per_rank = 8;
  std::vector<std::vector<std::int32_t>> result(1);
  config.result_sink = &result;
  const auto report = run_odd_even(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  EXPECT_TRUE(std::is_sorted(result[0].begin(), result[0].end()));
}

TEST(OddEven, SwapBugStillTerminatesAndSorts) {
  // §II-G: the swap is a *latent* deadlock; under eager buffering the run
  // completes and even still sorts (both sides send first, then receive).
  OddEvenConfig config;
  config.nranks = 16;
  config.elements_per_rank = 16;
  config.fault = FaultSpec{FaultType::SwapBug, 5, -1, 7};
  std::vector<std::vector<std::int32_t>> result(16);
  config.result_sink = &result;
  const auto report = run_odd_even(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  EXPECT_FALSE(report.deadlock);
  const auto all = flatten(result);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(OddEven, DlBugDeadlocksAndTruncates) {
  OddEvenConfig config;
  config.nranks = 16;
  config.elements_per_rank = 16;
  config.fault = FaultSpec{FaultType::DlBug, 5, -1, 7};
  const auto report = run_odd_even(config, fast_world());
  EXPECT_TRUE(report.deadlock);
  EXPECT_EQ(report.ranks[5].status, simmpi::RankStatus::Aborted);
  EXPECT_NE(report.deadlock_info.find("rank 5"), std::string::npos);
}

// --- TSP -----------------------------------------------------------------------

TEST(Tsp, DeterministicProblemGeneration) {
  const auto a = tsp_init(12, 99);
  const auto b = tsp_init(12, 99);
  EXPECT_EQ(a.xs, b.xs);
  EXPECT_EQ(a.ys, b.ys);
}

TEST(Tsp, TwoOptImprovesOverIdentityTour) {
  const auto problem = tsp_init(16, 5);
  std::vector<std::uint32_t> identity(16);
  std::iota(identity.begin(), identity.end(), 0u);
  const double identity_len = problem.tour_length(identity);
  const double optimized = tsp_exec(problem, 1);
  EXPECT_LE(optimized, identity_len * 1.01);
  EXPECT_GT(optimized, 0.0);
}

TEST(Tsp, DifferentSeedsGiveLocalOptima) {
  const auto problem = tsp_init(14, 6);
  const double a = tsp_exec(problem, 1);
  const double b = tsp_exec(problem, 2);
  // Both are valid tours of the same instance; lengths within 2x.
  EXPECT_LT(std::max(a, b) / std::min(a, b), 2.0);
}

// --- ILCS ----------------------------------------------------------------------

TEST(Ilcs, CompletesAndAgreesOnChampion) {
  IlcsConfig config;
  config.nranks = 4;
  config.workers = 3;
  config.ncities = 12;
  std::vector<double> champions(4, -1.0);
  config.champion_sink = &champions;
  const auto report = run_ilcs(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  for (const auto c : champions) {
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 1e9);
  }
}

TEST(Ilcs, OmpNoCriticalStillCompletes) {
  IlcsConfig config;
  config.nranks = 4;
  config.workers = 3;
  config.ncities = 12;
  config.fault = FaultSpec{FaultType::OmpNoCritical, 2, 2, -1};
  const auto report = run_ilcs(config, fast_world());
  EXPECT_TRUE(report.all_completed());  // silent bug: no crash, no hang
}

TEST(Ilcs, WrongCollectiveSizeDeadlocks) {
  IlcsConfig config;
  config.nranks = 4;
  config.workers = 2;
  config.ncities = 10;
  config.fault = FaultSpec{FaultType::WrongCollectiveSize, 2, -1, -1};
  const auto report = run_ilcs(config, fast_world());
  EXPECT_TRUE(report.deadlock);
  EXPECT_NE(report.deadlock_info.find("MPI_Allreduce"), std::string::npos);
}

TEST(Ilcs, WrongCollectiveOpTerminates) {
  IlcsConfig config;
  config.nranks = 4;
  config.workers = 2;
  config.ncities = 10;
  config.fault = FaultSpec{FaultType::WrongCollectiveOp, 0, -1, -1};
  const auto report = run_ilcs(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  EXPECT_FALSE(report.deadlock);
}

// --- LULESH ----------------------------------------------------------------------

TEST(Lulesh, CompletesAllCycles) {
  LuleshConfig config;
  config.nranks = 4;
  config.omp_threads = 2;
  config.elements_per_rank = 16;
  config.cycles = 3;
  std::vector<double> energy(4, -1.0);
  config.energy_sink = &energy;
  const auto report = run_lulesh(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  for (const auto e : energy) EXPECT_GE(e, 0.0);
}

TEST(Lulesh, EnergyDepositedAtOrigin) {
  LuleshConfig config;
  config.nranks = 2;
  config.omp_threads = 2;
  config.elements_per_rank = 8;
  config.cycles = 1;
  std::vector<double> energy(2, -1.0);
  config.energy_sink = &energy;
  const auto report = run_lulesh(config, fast_world());
  EXPECT_TRUE(report.all_completed());
  EXPECT_GT(energy[0], energy[1]);  // the Sedov deposit lives in rank 0
}

TEST(Lulesh, SkipLagrangeLeapFrogHangsTheJob) {
  LuleshConfig config;
  config.nranks = 4;
  config.omp_threads = 2;
  config.elements_per_rank = 16;
  config.cycles = 3;
  config.fault = FaultSpec{FaultType::SkipLagrangeLeapFrog, 2, -1, -1};
  const auto report = run_lulesh(config, fast_world());
  EXPECT_TRUE(report.deadlock);
  // The skipping rank starves its neighbours: somebody is stuck in p2p.
  EXPECT_NE(report.deadlock_info.find("MPI_"), std::string::npos);
}

TEST(Lulesh, DeterministicAcrossRuns) {
  LuleshConfig config;
  config.nranks = 2;
  config.omp_threads = 2;
  config.elements_per_rank = 8;
  config.cycles = 2;
  std::vector<double> e1(2), e2(2);
  config.energy_sink = &e1;
  (void)run_lulesh(config, fast_world());
  config.energy_sink = &e2;
  (void)run_lulesh(config, fast_world());
  EXPECT_EQ(e1, e2);
}

}  // namespace
}  // namespace difftrace::apps
