// End-to-end reproductions of the paper's §IV (ILCS) and §V (LULESH)
// debugging scenarios at test-sized scale. The bench/ binaries run the
// paper-sized configurations; here the assertions are the structural ones
// that must hold at any scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/ilcs.hpp"
#include "apps/lulesh.hpp"
#include "apps/runner.hpp"
#include "core/pipeline.hpp"

namespace difftrace {
namespace {

using core::AttrConfig;
using core::AttrKind;
using core::FilterSpec;
using core::FreqMode;

simmpi::WorldConfig fast_world(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(60'000);
  return config;
}

trace::TraceStore trace_ilcs(apps::IlcsConfig config,
                             instrument::CaptureLevel level = instrument::CaptureLevel::MainImage,
                             std::chrono::milliseconds watchdog_poll = std::chrono::milliseconds(5)) {
  auto world = fast_world(config.nranks);
  world.watchdog_poll = watchdog_poll;
  auto run = apps::run_traced(world,
                              [config](simmpi::Comm& comm) { apps::ilcs_rank(comm, config); }, level);
  return std::move(run.store);
}

apps::IlcsConfig small_ilcs() {
  apps::IlcsConfig config;
  config.nranks = 4;
  config.workers = 3;
  config.ncities = 12;
  return config;
}

TEST(IlcsIntegration, CollectsOneTracePerThread) {
  const auto store = trace_ilcs(small_ilcs());
  EXPECT_EQ(store.size(), 4u * (3u + 1u));  // 4 procs × (master + 3 workers)
}

TEST(IlcsIntegration, WorkerTracesContainTheListingStructure) {
  const auto store = trace_ilcs(small_ilcs());
  FilterSpec filter;
  filter.keep(core::Category::OmpCritical).keep(core::Category::Memory).keep_custom("^CPU_");
  const auto tokens = filter.apply(store, {1, 2});
  EXPECT_TRUE(std::count(tokens.begin(), tokens.end(), "CPU_Exec") >= 1);
  // Champion updates are bracketed: critical_start, memcpy, critical_end.
  const auto first_crit =
      std::find(tokens.begin(), tokens.end(), std::string("GOMP_critical_start"));
  ASSERT_NE(first_crit, tokens.end());
  EXPECT_EQ(*(first_crit + 1), "memcpy");
  EXPECT_EQ(*(first_crit + 2), "GOMP_critical_end");
}

TEST(IlcsIntegration, MainImageHidesMpiInternals) {
  const auto store = trace_ilcs(small_ilcs(), instrument::CaptureLevel::MainImage);
  FilterSpec internals;
  internals.keep(core::Category::MpiInternal);
  EXPECT_TRUE(internals.apply(store, {0, 0}).empty());

  const auto all_images = trace_ilcs(small_ilcs(), instrument::CaptureLevel::AllImages);
  EXPECT_FALSE(internals.apply(all_images, {0, 0}).empty());
}

TEST(IlcsIntegration, OmpNoCriticalFlagsTheFaultyWorker) {
  // §IV-B (Table VI) at 4×3 scale, fault in worker 2 of process 2: the
  // "mem + ompcrit + custom" filter with sing.noFreq must single out 2.2.
  auto faulty_config = small_ilcs();
  faulty_config.fault = apps::FaultSpec{apps::FaultType::OmpNoCritical, 2, 2, -1};
  const auto normal = trace_ilcs(small_ilcs());
  const auto faulty = trace_ilcs(faulty_config);

  FilterSpec filter;
  filter.keep(core::Category::OmpCritical).keep(core::Category::Memory).keep_custom("^CPU_Exec$");

  // The deterministic, trace-level bug signature: the faulty worker still
  // memcpys the champion but never takes the critical section; every other
  // worker keeps the bracket (workers always update at least once — the
  // first evaluation beats the infinite initial champion).
  for (const auto& key : {trace::TraceKey{2, 2}, trace::TraceKey{1, 1}, trace::TraceKey{3, 3}}) {
    const auto normal_tokens = filter.apply(normal, key);
    EXPECT_NE(std::find(normal_tokens.begin(), normal_tokens.end(), "GOMP_critical_start"),
              normal_tokens.end())
        << key.label();
  }
  const auto faulty_22 = filter.apply(faulty, {2, 2});
  EXPECT_NE(std::find(faulty_22.begin(), faulty_22.end(), "memcpy"), faulty_22.end());
  EXPECT_EQ(std::find(faulty_22.begin(), faulty_22.end(), "GOMP_critical_start"), faulty_22.end());
  for (int tid = 1; tid <= 3; ++tid) {
    if (tid == 2) continue;
    const auto other = filter.apply(faulty, {2, tid});
    EXPECT_NE(std::find(other.begin(), other.end(), "GOMP_critical_start"), other.end());
  }

  // FCA view: with presence-only attributes and NLR folding restricted to
  // runs (K=1, so loop identities don't churn with the nondeterministic
  // update pattern), the faulty worker is the only trace whose attribute
  // set lost the critical-section attributes — so its JSM_D row is hot.
  const core::Session session(normal, faulty, filter, core::NlrConfig{.k = 1});
  const auto eval = core::evaluate(session, AttrConfig{AttrKind::Single, FreqMode::NoFreq},
                                   core::Linkage::Ward);
  const auto idx = session.index_of({2, 2});
  EXPECT_GT(eval.scores[idx], 0.0);
  const auto top = core::select_suspicious(eval.scores, 6, 1.0);
  EXPECT_NE(std::find(top.begin(), top.end(), idx), top.end())
      << "faulty worker not among the suspicious traces";

  // diffNLR(2.2): the faulty run updates champions without the critical
  // bracket (Figure 7a's green/red story).
  const auto text = session.diffnlr({2, 2}).render();
  EXPECT_NE(text.find("GOMP_critical_start"), std::string::npos);
}

TEST(IlcsIntegration, WrongCollectiveSizeMarksManyProcessesSuspicious) {
  // §IV-C (Table VII): the deadlock truncates everyone; the ranking is
  // broad, exactly as the paper observes ("marks almost all processes").
  auto faulty_config = small_ilcs();
  faulty_config.fault = apps::FaultSpec{apps::FaultType::WrongCollectiveSize, 2, -1, -1};
  const auto normal = trace_ilcs(small_ilcs());
  // Slow watchdog: the hung job's workers keep searching for ~50ms before
  // the freeze, so their evaluation counts clearly exceed the short normal
  // run's — the timing asymmetry that makes Table VII's noise.
  const auto faulty =
      trace_ilcs(faulty_config, instrument::CaptureLevel::MainImage, std::chrono::milliseconds(50));

  // Every master truncates at the very same first Allreduce, so under
  // presence-only attributes the "sky subtraction" JSM_D legitimately
  // cancels the (uniform) change — the paper's own observation that this
  // early deadlock is "not helpful for debugging" through the ranking.
  const core::Session session(normal, faulty, FilterSpec::mpi_all(), {});
  const auto nofreq = core::evaluate(session, AttrConfig{AttrKind::Single, FreqMode::NoFreq},
                                     core::Linkage::Ward);
  for (std::size_t i = 0; i < session.traces().size(); ++i)
    if (session.traces()[i].thread == 0) {
      EXPECT_DOUBLE_EQ(nofreq.scores[i], 0.0);
    }

  // The deterministic ground truth behind Table VII's "marks almost all
  // processes as suspicious": EVERY master was truncated — their last MPI
  // call is the hung Allreduce and none reached MPI_Finalize. (The paper's
  // noisy per-row suspicion lists come from cluster-scale timing jitter;
  // the paper-scale bench exp_table7_collective_deadlock reproduces that.)
  for (const auto& key : session.traces()) {
    if (key.thread != 0) continue;
    const auto tokens = FilterSpec::mpi_all().apply(faulty, key);
    ASSERT_FALSE(tokens.empty()) << key.label();
    EXPECT_EQ(tokens.back(), "MPI_Allreduce") << key.label();
    EXPECT_EQ(std::count(tokens.begin(), tokens.end(), "MPI_Finalize"), 0) << key.label();
  }

  // Figure 7b: identical prefix through the Allreduce, then the normal run
  // continues to MPI_Finalize while the faulty one stops.
  const auto diff = session.diffnlr({1, 0});
  const auto text = diff.render();
  EXPECT_EQ(diff.blocks.front().op, core::EditOp::Equal);  // common prefix first
  EXPECT_NE(text.find("- MPI_Finalize"), std::string::npos);
}

TEST(IlcsIntegration, WrongCollectiveOpChangesBcastBehaviour) {
  // §IV-D (Table VIII): the silent wrong-op bug terminates but shifts the
  // champion-exchange loop. MPI-filtered traces of the faulty run must
  // still end in MPI_Finalize yet differ somewhere.
  auto faulty_config = small_ilcs();
  faulty_config.fault = apps::FaultSpec{apps::FaultType::WrongCollectiveOp, 0, -1, -1};
  const auto normal = trace_ilcs(small_ilcs());
  const auto faulty = trace_ilcs(faulty_config);

  const core::Session session(normal, faulty, FilterSpec::mpi_all(), {});
  for (const auto& key : session.traces()) {
    if (key.thread != 0) continue;
    const auto tokens = FilterSpec::mpi_all().apply(faulty, key);
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens.back(), "MPI_Finalize") << key.label();
  }

  // The faulty rank sees the MAX of the champions, so `local <= global`
  // always holds and it claims champion ownership on EVERY round — visible
  // as the traced updateChampionBuffer call pattern: rank 0's master claims
  // at least once, and (because its claim id 0 wins the MIN reduction) no
  // other master ever claims.
  const auto claims = [&](int proc) {
    core::FilterSpec f;
    f.keep_custom("^updateChampionBuffer$");
    return f.apply(faulty, {proc, 0}).size();
  };
  EXPECT_GE(claims(0), 1u);
  for (int proc = 1; proc < 4; ++proc) EXPECT_EQ(claims(proc), 0u) << "proc " << proc;
}

// --- LULESH -------------------------------------------------------------------

apps::LuleshConfig small_lulesh() {
  apps::LuleshConfig config;
  config.nranks = 4;
  config.omp_threads = 2;
  config.elements_per_rank = 12;
  config.cycles = 3;
  return config;
}

trace::TraceStore trace_lulesh(apps::LuleshConfig config) {
  auto run = apps::run_traced(fast_world(config.nranks),
                              [config](simmpi::Comm& comm) { apps::lulesh_rank(comm, config); });
  return std::move(run.store);
}

TEST(LuleshIntegration, TracesContainTheRealCallTree) {
  const auto store = trace_lulesh(small_lulesh());
  FilterSpec filter;
  filter.keep_custom("^Lagrange|^Calc|^Comm|^TimeIncrement");
  const auto tokens = filter.apply(store, {1, 0});
  for (const auto* fn : {"TimeIncrement", "LagrangeLeapFrog", "LagrangeNodal", "LagrangeElements",
                         "CalcForceForNodes", "CalcQForElems", "CommSBN", "CommMonoQ"})
    EXPECT_NE(std::find(tokens.begin(), tokens.end(), std::string(fn)), tokens.end()) << fn;
}

TEST(LuleshIntegration, NlrCompactsTheCycleLoop) {
  // §V's reduction factors: the per-cycle call pattern must fold into loops.
  auto config = small_lulesh();
  config.cycles = 6;
  const auto store = trace_lulesh(config);
  const auto tokens = FilterSpec::everything().apply(store, {1, 0});
  core::TokenTable token_table;
  core::LoopTable loops;
  const auto program =
      core::build_nlr(token_table.intern_all(tokens), loops, core::NlrConfig{.k = 10});
  EXPECT_LT(program.size() * 2, tokens.size());  // reduction factor > 2
}

TEST(LuleshIntegration, SkipLeapFrogFaultShowsInDiffNlr) {
  // §V / Table IX: rank 2 stops calling LagrangeLeapFrog; the job hangs and
  // every rank's trace truncates where it stopped making progress.
  auto faulty_config = small_lulesh();
  faulty_config.fault = apps::FaultSpec{apps::FaultType::SkipLagrangeLeapFrog, 2, -1, -1};
  const auto normal = trace_lulesh(small_lulesh());
  const auto faulty = trace_lulesh(faulty_config);

  FilterSpec filter;
  filter.keep(core::Category::MpiAll).keep_custom("^Lagrange");
  const core::Session session(normal, faulty, filter, {});

  // diffNLR(2.0): LagrangeLeapFrog disappears from the faulty trace.
  const auto text = session.diffnlr({2, 0}).render();
  EXPECT_NE(text.find("LagrangeLeapFrog"), std::string::npos);
  EXPECT_FALSE(session.diffnlr({2, 0}).identical());

  // The ranking sees widespread suspicion (all processes in Table IX).
  const auto eval = core::evaluate(session, AttrConfig{AttrKind::Single, FreqMode::NoFreq},
                                   core::Linkage::Ward);
  std::size_t affected = 0;
  for (std::size_t i = 0; i < session.traces().size(); ++i)
    if (session.traces()[i].thread == 0 && eval.scores[i] > 0.0) ++affected;
  EXPECT_GE(affected, 2u);
}

TEST(LuleshIntegration, StatsMatchPaperShape) {
  // §V statistics at small scale: hundreds of distinct functions is the
  // paper's regime; ours must at least exceed the LULESH kernel inventory,
  // and compression must beat raw storage by a large factor.
  const auto store = trace_lulesh(small_lulesh());
  EXPECT_GT(store.registry().size(), 40u);
  const auto stats = store.stats();
  EXPECT_GT(stats.compression_ratio, 5.0);  // the paper-scale bench measures far higher
  EXPECT_GT(stats.total_events, 1000u);
}

}  // namespace
}  // namespace difftrace
