#include <gtest/gtest.h>

#include "core/hclust.hpp"
#include "core/pipeline.hpp"
#include "trace/writer.hpp"

namespace difftrace::core {
namespace {

util::Matrix two_pairs() {
  util::Matrix d = util::Matrix::square(4);
  const double rows[4][4] = {{0.0, 0.1, 5.0, 5.0},
                             {0.1, 0.0, 5.0, 5.0},
                             {5.0, 5.0, 0.0, 0.2},
                             {5.0, 5.0, 0.2, 0.0}};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) d(i, j) = rows[i][j];
  return d;
}

TEST(Cophenetic, PairHeightsAndJoinHeight) {
  const auto z = linkage(two_pairs(), Linkage::Average);
  const auto c = cophenetic(z, 4);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(c(2, 3), 0.2);
  EXPECT_DOUBLE_EQ(c(0, 2), z[2].height);  // cross-pair join at the final merge
  EXPECT_DOUBLE_EQ(c(1, 3), z[2].height);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c(2, 0), c(0, 2));  // symmetric
}

TEST(Cophenetic, UltrametricInequality) {
  // cophenetic distances satisfy d(i,k) <= max(d(i,j), d(j,k)).
  const auto z = linkage(two_pairs(), Linkage::Complete);
  const auto c = cophenetic(z, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_LE(c(i, k), std::max(c(i, j), c(j, k)) + 1e-12);
}

TEST(Cophenetic, SizeMismatchThrows) {
  const auto z = linkage(two_pairs(), Linkage::Single);
  EXPECT_THROW((void)cophenetic(z, 5), std::invalid_argument);
}

TEST(Dendrogram, RendersMergesWithLabels) {
  const auto z = linkage(two_pairs(), Linkage::Average);
  const auto text = render_dendrogram(z, 4, {"a", "b", "c", "d"});
  EXPECT_NE(text.find("[a] + [b]  @ 0.100"), std::string::npos);
  EXPECT_NE(text.find("[c] + [d]  @ 0.200"), std::string::npos);
  EXPECT_NE(text.find("[a b] + [c d]"), std::string::npos);
}

TEST(Dendrogram, DefaultLabelsAreIndices) {
  const auto z = linkage(two_pairs(), Linkage::Single);
  const auto text = render_dendrogram(z, 4);
  EXPECT_NE(text.find("[0] + [1]"), std::string::npos);
}

TEST(Dendrogram, LabelCountMismatchThrows) {
  const auto z = linkage(two_pairs(), Linkage::Single);
  EXPECT_THROW((void)render_dendrogram(z, 4, {"only"}), std::invalid_argument);
}

// --- single-run outlier analysis ---------------------------------------------

/// Builds a store of synthetic traces; each entry is a list of call names.
trace::TraceStore make_store(const std::vector<std::vector<std::string>>& traces) {
  trace::TraceStore store;
  for (std::size_t p = 0; p < traces.size(); ++p) {
    trace::TraceWriter writer({static_cast<int>(p), 0});
    for (const auto& name : traces[p])
      writer.record(trace::EventKind::Call, store.registry().intern(name));
    store.absorb(writer);
  }
  return store;
}

TEST(SingleRun, TruncatedTraceIsTheOutlier) {
  // Three healthy traces reach "fini"; the truncated one does not — it must
  // get the highest outlier score (the §II-A observation).
  const std::vector<std::string> healthy = {"init", "work", "work", "fini"};
  const auto store = make_store({healthy, healthy, {"init", "work"}, healthy});
  const auto eval = evaluate_single_run(store, FilterSpec::everything(),
                                        {AttrKind::Single, FreqMode::NoFreq});
  ASSERT_EQ(eval.outlier_scores.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    if (i != 2) {
      EXPECT_GT(eval.outlier_scores[2], eval.outlier_scores[i]);
    }
  EXPECT_EQ(eval.dendrogram.size(), 3u);
}

TEST(SingleRun, IdenticalTracesHaveZeroOutlierScores) {
  const std::vector<std::string> t = {"a", "b", "c"};
  const auto store = make_store({t, t, t});
  const auto eval = evaluate_single_run(store, FilterSpec::everything(),
                                        {AttrKind::Single, FreqMode::Actual});
  for (const auto s : eval.outlier_scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SingleRun, SingleTraceDegenerates) {
  const auto store = make_store({{"a"}});
  const auto eval = evaluate_single_run(store, FilterSpec::everything(),
                                        {AttrKind::Single, FreqMode::NoFreq});
  ASSERT_EQ(eval.outlier_scores.size(), 1u);
  EXPECT_DOUBLE_EQ(eval.outlier_scores[0], 0.0);
  EXPECT_TRUE(eval.dendrogram.empty());
}

TEST(SingleRun, MasterWorkerRolesClusterApart) {
  // One master-shaped trace among workers: the master is the outlier, and
  // the dendrogram separates roles — the paper's structural-clustering use.
  const std::vector<std::string> master = {"init", "bcast", "reduce", "fini"};
  const std::vector<std::string> worker = {"init", "exec", "exec", "fini"};
  const auto store = make_store({master, worker, worker, worker});
  const auto eval = evaluate_single_run(store, FilterSpec::everything(),
                                        {AttrKind::Single, FreqMode::NoFreq});
  for (std::size_t i = 1; i < 4; ++i) EXPECT_GT(eval.outlier_scores[0], eval.outlier_scores[i]);
  const auto labels = cut_to_k(eval.dendrogram, 4, 2);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
}

}  // namespace
}  // namespace difftrace::core
