#include "analyze/analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <memory>
#include <string_view>

#include "analyze/checker.hpp"
#include "analyze/context.hpp"
#include "trace/op.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"

namespace difftrace::analyze {
namespace {

using trace::EventKind;
using trace::Image;
using trace::OpCode;
using trace::OpRecord;

// Hand-builds a store one stream at a time through the real TraceWriter, so
// the tests exercise the same encode/annotate/absorb path the tracer uses.
class StoreBuilder {
 public:
  trace::FunctionId fn(const std::string& name, Image image = Image::Main) {
    return store_.registry().intern(name, image);
  }

  trace::TraceWriter& stream(int proc, int thread = 0) {
    const trace::TraceKey key{proc, thread};
    auto it = writers_.find(key);
    if (it == writers_.end())
      it = writers_.emplace(key, std::make_unique<trace::TraceWriter>(key, "null")).first;
    return *it->second;
  }

  /// Absorbs every stream; the listed keys are frozen first (watchdog kill).
  trace::TraceStore finish(std::initializer_list<trace::TraceKey> freeze = {}) {
    for (auto& [key, writer] : writers_) {
      if (std::find(freeze.begin(), freeze.end(), key) != freeze.end()) writer->freeze();
      store_.absorb(*writer);
    }
    return std::move(store_);
  }

 private:
  trace::TraceStore store_;
  std::map<trace::TraceKey, std::unique_ptr<trace::TraceWriter>> writers_;
};

void call(trace::TraceWriter& w, trace::FunctionId f) { w.record(EventKind::Call, f); }
void ret(trace::TraceWriter& w, trace::FunctionId f) { w.record(EventKind::Return, f); }

std::size_t count_rule(const CheckReport& report, std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; }));
}

const Diagnostic* find_rule(const CheckReport& report, std::string_view rule) {
  for (const auto& d : report.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

// --- registry and options ---------------------------------------------------

TEST(CheckerRegistry, ListsStreamMpiAndLocks) {
  const auto infos = available_checkers();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].name, "stream");
  EXPECT_EQ(infos[1].name, "mpi");
  EXPECT_EQ(infos[2].name, "locks");
  for (const auto& info : infos) {
    const auto checker = make_checker(info.name);
    EXPECT_EQ(checker->name(), info.name);
    EXPECT_EQ(checker->description(), info.description);
  }
}

TEST(CheckerRegistry, UnknownNameThrowsListingKnownOnes) {
  try {
    (void)make_checker("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mpi"), std::string::npos);
  }
}

TEST(CheckerRegistry, RunChecksFailsFastOnUnknownChecker) {
  const trace::TraceStore store;
  EXPECT_THROW((void)run_checks(store, {.checkers = {"stream", "bogus"}}), std::invalid_argument);
}

// --- exit codes -------------------------------------------------------------

TEST(CheckReportApi, ExitCodeMapsSeverities) {
  CheckReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.exit_code(), 0);
  report.add({.rule = "x", .severity = Severity::Info});
  EXPECT_EQ(report.exit_code(), 3);
  report.add({.rule = "x", .severity = Severity::Warning});
  EXPECT_EQ(report.exit_code(), 3);
  report.add({.rule = "x", .severity = Severity::Error});
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
}

TEST(CheckReportApi, SortPutsMostSevereFirst) {
  CheckReport report;
  report.add({.rule = "b", .severity = Severity::Info, .where = {0, 0}});
  report.add({.rule = "a", .severity = Severity::Error, .where = {3, 0}});
  report.add({.rule = "c", .severity = Severity::Warning, .where = {1, 0}});
  report.sort();
  EXPECT_EQ(report.diagnostics[0].severity, Severity::Error);
  EXPECT_EQ(report.diagnostics[2].severity, Severity::Info);
}

// --- stream well-formedness -------------------------------------------------

TEST(Wellformed, BalancedCleanRunIsClean) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto work = b.fn("work");
  auto& w = b.stream(0);
  call(w, main_fn);
  call(w, work);
  ret(w, work);
  ret(w, main_fn);
  const auto store = b.finish();
  const auto report = run_checks(store);
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_EQ(report.streams_checked, 1u);
  EXPECT_EQ(report.events_checked, 4u);
  EXPECT_EQ(report.checkers_run, 3u);
}

TEST(Wellformed, OrphanReturnIsError) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  auto& w = b.stream(0);
  ret(w, main_fn);  // return with an empty stack
  const auto report = run_checks(b.finish());
  const auto* d = find_rule(report, "stream.orphan-return");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->function, "main");
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(Wellformed, MismatchedReturnIsError) {
  StoreBuilder b;
  const auto f = b.fn("f");
  const auto g = b.fn("g");
  auto& w = b.stream(0);
  call(w, f);
  ret(w, g);  // closes the wrong function
  const auto report = run_checks(b.finish());
  const auto* d = find_rule(report, "stream.mismatched-return");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->function, "g");
}

TEST(Wellformed, UnclosedCallInCleanRunIsWarning) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  auto& w = b.stream(0);
  call(w, main_fn);  // never returns, but nothing froze the writer
  const auto report = run_checks(b.finish());
  const auto* d = find_rule(report, "stream.unclosed-call");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->message.find("cleanly finished"), std::string::npos);
}

TEST(Wellformed, UnclosedCallInTruncatedRunIsInfoWithPath) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  auto& w = b.stream(0);
  call(w, main_fn);
  call(w, recv);
  const auto report = run_checks(b.finish({{0, 0}}));
  const auto* d = find_rule(report, "stream.unclosed-call");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Info);
  EXPECT_NE(d->message.find("frozen by watchdog"), std::string::npos);
  EXPECT_NE(d->path.find("main > MPI_Recv"), std::string::npos);
}

// --- blocked-stream classification ------------------------------------------

TEST(Context, OpenMpiFrameClassifiesStreamAsBlocked) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  auto& w = b.stream(2);
  call(w, main_fn);
  call(w, recv);
  w.annotate({.code = OpCode::RecvPost, .peer = 1, .tag = 7});
  const auto store = b.finish({{2, 0}});
  const auto ctx = CheckContext::build(store);
  const auto* s = ctx.find({2, 0});
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->blocked);
  EXPECT_EQ(ctx.fn_name(s->blocked_fid), "MPI_Recv");
  ASSERT_NE(s->pending(), nullptr);
  EXPECT_EQ(s->pending()->code, OpCode::RecvPost);
  EXPECT_EQ(s->pending()->peer, 1);
}

TEST(Context, OpenMainFramesOnlyIsNotBlocked) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  auto& w = b.stream(0);
  call(w, main_fn);
  const auto store = b.finish({{0, 0}});
  const auto ctx = CheckContext::build(store);
  const auto* s = ctx.find({0, 0});
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->blocked);
}

// --- MPI checker ------------------------------------------------------------

/// A balanced rank that posts the given ops from inside one MPI frame each.
void matched_pair(StoreBuilder& b, int src, int dst, int tag) {
  const auto main_fn = b.fn("main");
  const auto send = b.fn("MPI_Send", Image::MpiLib);
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  auto& ws = b.stream(src);
  call(ws, main_fn);
  call(ws, send);
  ws.annotate({.code = OpCode::SendPost, .peer = dst, .tag = tag});
  ret(ws, send);
  ret(ws, main_fn);
  auto& wr = b.stream(dst);
  call(wr, main_fn);
  call(wr, recv);
  wr.annotate({.code = OpCode::RecvPost, .peer = src, .tag = tag});
  ret(wr, recv);
  ret(wr, main_fn);
}

TEST(MpiChecker, MatchedTrafficIsClean) {
  StoreBuilder b;
  matched_pair(b, 0, 1, 42);
  const auto report = run_checks(b.finish());
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(MpiChecker, BlockedUnmatchedRecvNamesRankFunctionAndPeer) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  auto& w0 = b.stream(0);
  call(w0, main_fn);
  ret(w0, main_fn);
  auto& w1 = b.stream(1);
  call(w1, main_fn);
  call(w1, recv);
  w1.annotate({.code = OpCode::RecvPost, .peer = 0, .tag = 9});
  const auto report = run_checks(b.finish({{1, 0}}));
  const auto* d = find_rule(report, "mpi.unmatched-recv");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->where, (trace::TraceKey{1, 0}));
  EXPECT_EQ(d->function, "MPI_Recv");
  EXPECT_NE(d->message.find("from rank 0 tag 9"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(MpiChecker, SendSurplusIsWarning) {
  StoreBuilder b;
  matched_pair(b, 0, 1, 1);
  const auto send = b.fn("MPI_Send", Image::MpiLib);
  auto& w0 = b.stream(0);  // one extra send nobody receives
  call(w0, send);
  w0.annotate({.code = OpCode::SendPost, .peer = 1, .tag = 99});
  ret(w0, send);
  const auto report = run_checks(b.finish());
  const auto* d = find_rule(report, "mpi.unmatched-send");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(MpiChecker, RecvRecvCycleIsReportedOnce) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  for (int rank : {0, 1}) {
    auto& w = b.stream(rank);
    call(w, main_fn);
    call(w, recv);
    w.annotate({.code = OpCode::RecvPost, .peer = 1 - rank, .tag = rank});
  }
  const auto report = run_checks(b.finish({{0, 0}, {1, 0}}));
  EXPECT_EQ(count_rule(report, "mpi.deadlock-cycle"), 1u);
  const auto* d = find_rule(report, "mpi.deadlock-cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_NE(d->message.find("rank 0"), std::string::npos);
  EXPECT_NE(d->message.find("rank 1"), std::string::npos);
}

/// One rank per proc entering an allreduce; `count` per rank, all completing.
void collective_round(StoreBuilder& b, const std::vector<std::uint64_t>& counts,
                      const std::vector<std::uint8_t>& redops) {
  const auto main_fn = b.fn("main");
  const auto allreduce = b.fn("MPI_Allreduce", Image::MpiLib);
  for (std::size_t rank = 0; rank < counts.size(); ++rank) {
    auto& w = b.stream(static_cast<int>(rank));
    call(w, main_fn);
    call(w, allreduce);
    w.annotate({.code = OpCode::CollEnter,
                .peer = 0,
                .count = counts[rank],
                .coll = 3,
                .dtype = 1,
                .redop = redops[rank],
                .detail = "MPI_Allreduce"});
    ret(w, allreduce);
    ret(w, main_fn);
  }
}

TEST(MpiChecker, CollectiveCountMismatchNamesDissenter) {
  StoreBuilder b;
  collective_round(b, {1, 1, 2}, {1, 1, 1});
  const auto report = run_checks(b.finish());
  ASSERT_EQ(count_rule(report, "mpi.collective-mismatch"), 1u);
  const auto* d = find_rule(report, "mpi.collective-mismatch");
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->where, (trace::TraceKey{2, 0}));
  EXPECT_NE(d->message.find("count=2"), std::string::npos);
}

TEST(MpiChecker, CollectiveRedopMismatchIsWarningOnly) {
  StoreBuilder b;
  collective_round(b, {1, 1, 1}, {1, 2, 1});
  const auto report = run_checks(b.finish());
  EXPECT_EQ(count_rule(report, "mpi.collective-mismatch"), 0u);
  ASSERT_EQ(count_rule(report, "mpi.collective-op-mismatch"), 1u);
  const auto* d = find_rule(report, "mpi.collective-op-mismatch");
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->where, (trace::TraceKey{1, 0}));
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(MpiChecker, CollectiveStallNamesMissingRank) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto barrier = b.fn("MPI_Barrier", Image::MpiLib);
  for (int rank : {0, 1}) {  // blocked inside the barrier
    auto& w = b.stream(rank);
    call(w, main_fn);
    call(w, barrier);
    w.annotate({.code = OpCode::CollEnter, .peer = -1, .coll = 1, .detail = "MPI_Barrier"});
  }
  auto& w2 = b.stream(2);  // finishes without ever joining
  call(w2, main_fn);
  ret(w2, main_fn);
  const auto report = run_checks(b.finish({{0, 0}, {1, 0}}));
  ASSERT_EQ(count_rule(report, "mpi.collective-stall"), 1u);
  const auto* d = find_rule(report, "mpi.collective-stall");
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->function, "MPI_Barrier");
  EXPECT_NE(d->message.find("rank 2"), std::string::npos);
}

TEST(MpiChecker, ArchiveWithoutOpsIsSkippedWithNote) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  auto& w = b.stream(0);
  call(w, main_fn);
  ret(w, main_fn);
  const auto report = run_checks(b.finish(), {.checkers = {"mpi"}});
  EXPECT_TRUE(report.clean());
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.front().find("no op records"), std::string::npos);
}

TEST(MpiChecker, DegradedArchiveCapsErrorsAtWarning) {
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  const auto recv = b.fn("MPI_Recv", Image::MpiLib);
  auto& w0 = b.stream(0);
  call(w0, main_fn);
  ret(w0, main_fn);
  auto& w1 = b.stream(1);
  call(w1, main_fn);
  call(w1, recv);
  w1.annotate({.code = OpCode::RecvPost, .peer = 0, .tag = 5});
  auto store = b.finish({{1, 0}});
  // Re-mark rank 0's blob as salvaged: evidence is now one-sided, so the
  // unmatched-recv can no longer be proven — absence of a send might just be
  // a dropped record.
  auto blob = store.blob({0, 0});
  blob.salvaged = true;
  store.add_blob({0, 0}, std::move(blob));

  const auto report = run_checks(store);
  EXPECT_EQ(report.errors(), 0u) << report.render();
  const auto* d = find_rule(report, "mpi.unmatched-recv");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(report.exit_code(), 3);
  ASSERT_FALSE(report.notes.empty());  // the degradation is called out
}

// --- lock checker -----------------------------------------------------------

trace::TraceWriter& balanced_thread(StoreBuilder& b, int proc, int thread) {
  const auto main_fn = b.fn("main");
  auto& w = b.stream(proc, thread);
  call(w, main_fn);
  ret(w, main_fn);
  return w;
}

TEST(LockChecker, AbbaOrderIsCycleError) {
  StoreBuilder b;
  auto& t0 = balanced_thread(b, 0, 0);
  t0.annotate({.code = OpCode::LockAcquire, .detail = "A"});
  t0.annotate({.code = OpCode::LockAcquire, .detail = "B"});
  t0.annotate({.code = OpCode::LockRelease, .detail = "B"});
  t0.annotate({.code = OpCode::LockRelease, .detail = "A"});
  auto& t1 = balanced_thread(b, 0, 1);
  t1.annotate({.code = OpCode::LockAcquire, .detail = "B"});
  t1.annotate({.code = OpCode::LockAcquire, .detail = "A"});
  t1.annotate({.code = OpCode::LockRelease, .detail = "A"});
  t1.annotate({.code = OpCode::LockRelease, .detail = "B"});
  const auto report = run_checks(b.finish(), {.checkers = {"locks"}});
  ASSERT_EQ(count_rule(report, "mpi.deadlock-cycle"), 0u);
  ASSERT_EQ(count_rule(report, "lock.order-cycle"), 1u);
  const auto* d = find_rule(report, "lock.order-cycle");
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_NE(d->message.find("'A'"), std::string::npos);
  EXPECT_NE(d->message.find("'B'"), std::string::npos);
}

TEST(LockChecker, ConsistentOrderIsClean) {
  StoreBuilder b;
  for (int thread : {0, 1}) {
    auto& t = balanced_thread(b, 0, thread);
    t.annotate({.code = OpCode::LockAcquire, .detail = "A"});
    t.annotate({.code = OpCode::LockAcquire, .detail = "B"});
    t.annotate({.code = OpCode::LockRelease, .detail = "B"});
    t.annotate({.code = OpCode::LockRelease, .detail = "A"});
  }
  const auto report = run_checks(b.finish(), {.checkers = {"locks"}});
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(LockChecker, HeldAcrossBarrierIsError) {
  StoreBuilder b;
  auto& t0 = balanced_thread(b, 0, 0);
  t0.annotate({.code = OpCode::LockAcquire, .detail = "mutex"});
  t0.annotate({.code = OpCode::ThreadBarrier});
  t0.annotate({.code = OpCode::LockRelease, .detail = "mutex"});
  const auto report = run_checks(b.finish(), {.checkers = {"locks"}});
  ASSERT_EQ(count_rule(report, "lock.held-at-barrier"), 1u);
  const auto* d = find_rule(report, "lock.held-at-barrier");
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_NE(d->message.find("mutex"), std::string::npos);
}

TEST(LockChecker, ReacquireAndUnpairedRelease) {
  StoreBuilder b;
  auto& t0 = balanced_thread(b, 0, 0);
  t0.annotate({.code = OpCode::LockAcquire, .detail = "A"});
  t0.annotate({.code = OpCode::LockAcquire, .detail = "A"});  // self-deadlock
  t0.annotate({.code = OpCode::LockRelease, .detail = "Z"});  // never held
  const auto report = run_checks(b.finish(), {.checkers = {"locks"}});
  EXPECT_EQ(count_rule(report, "lock.reacquire"), 1u);
  EXPECT_EQ(count_rule(report, "lock.unpaired-release"), 1u);
}

TEST(LockChecker, UnreleasedReportedOnlyForCleanStreams) {
  StoreBuilder b;
  auto& t0 = balanced_thread(b, 0, 0);
  t0.annotate({.code = OpCode::LockAcquire, .detail = "A"});
  auto& t1 = balanced_thread(b, 1, 0);
  t1.annotate({.code = OpCode::LockAcquire, .detail = "B"});
  const auto report = run_checks(b.finish({{1, 0}}), {.checkers = {"locks"}});
  ASSERT_EQ(count_rule(report, "lock.unreleased"), 1u);
  // Only the cleanly-finished stream reports; the frozen one legitimately
  // ends holding its lock.
  EXPECT_EQ(find_rule(report, "lock.unreleased")->where, (trace::TraceKey{0, 0}));
}

// --- op side-channel persistence --------------------------------------------

TEST(OpRecords, EncodeDecodeRoundTrip) {
  std::vector<OpRecord> ops;
  ops.push_back({.event_index = 7,
                 .code = OpCode::SendPost,
                 .peer = 3,
                 .tag = -1,
                 .count = 4096,
                 .detail = "x"});
  ops.push_back({.event_index = 9,
                 .code = OpCode::CollEnter,
                 .peer = 0,
                 .tag = 0,
                 .count = 2,
                 .coll = 4,
                 .dtype = 1,
                 .redop = 2,
                 .detail = "MPI_Allreduce"});
  std::vector<std::uint8_t> bytes;
  trace::encode_ops(bytes, ops);
  std::vector<OpRecord> decoded;
  std::size_t pos = 0;
  ASSERT_TRUE(trace::decode_ops(bytes, pos, /*best_effort=*/false, decoded));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(decoded, ops);
}

TEST(OpRecords, TruncatedBufferKeepsPrefixInBestEffortMode) {
  std::vector<OpRecord> ops;
  ops.push_back({.event_index = 1, .code = OpCode::LockAcquire, .detail = "A"});
  ops.push_back({.event_index = 2, .code = OpCode::LockRelease, .detail = "A"});
  std::vector<std::uint8_t> bytes;
  trace::encode_ops(bytes, ops);
  bytes.resize(bytes.size() - 2);  // tear the last record

  std::vector<OpRecord> strict;
  std::size_t pos = 0;
  EXPECT_THROW((void)trace::decode_ops(bytes, pos, /*best_effort=*/false, strict),
               std::exception);

  std::vector<OpRecord> tolerant;
  pos = 0;
  EXPECT_FALSE(trace::decode_ops(bytes, pos, /*best_effort=*/true, tolerant));
  ASSERT_EQ(tolerant.size(), 1u);
  EXPECT_EQ(tolerant.front(), ops.front());
}

TEST(OpRecords, SaveLoadPreservesOpsAcrossArchiveRoundTrip) {
  StoreBuilder b;
  matched_pair(b, 0, 1, 11);
  const auto store = b.finish();
  const auto path = std::filesystem::temp_directory_path() / "difftrace_test_analyze_ops.dtr";
  store.save(path);
  const auto loaded = trace::TraceStore::load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.contains({0, 0}));
  EXPECT_EQ(loaded.blob({0, 0}).ops, store.blob({0, 0}).ops);
  EXPECT_EQ(loaded.blob({1, 0}).ops, store.blob({1, 0}).ops);
  ASSERT_EQ(loaded.blob({0, 0}).ops.size(), 1u);
  EXPECT_EQ(loaded.blob({0, 0}).ops.front().code, OpCode::SendPost);
  // The reloaded archive verifies clean end to end.
  EXPECT_TRUE(run_checks(loaded).clean());
}

TEST(OpRecords, LegacyBlobWithoutOpsSectionLoadsWithZeroOps) {
  // A blob whose payload carries no trailing op section (the pre-side-channel
  // layout) must parse as "no ops", not as garbage.
  StoreBuilder b;
  const auto main_fn = b.fn("main");
  auto& w = b.stream(0);
  call(w, main_fn);
  ret(w, main_fn);
  auto store = b.finish();
  auto blob = store.blob({0, 0});
  blob.ops.clear();
  store.add_blob({0, 0}, std::move(blob));
  const auto path = std::filesystem::temp_directory_path() / "difftrace_test_analyze_noops.dtr";
  store.save(path);
  const auto loaded = trace::TraceStore::load(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(loaded.blob({0, 0}).ops.empty());
  EXPECT_EQ(loaded.decode({0, 0}).size(), 2u);
}

}  // namespace
}  // namespace difftrace::analyze
