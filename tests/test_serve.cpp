// Tests for the resident serve subsystem: protocol framing, the sharded
// on-disk run store (including the kill-recovery rebuild path), the hot
// cache, Service request handling, and full socket round trips through the
// real `serve`/`query` commands — where byte-parity with the cold CLI is
// pinned.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "cli/load.hpp"
#include "serve/hot_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/shard_store.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"

namespace difftrace::serve {
namespace {

namespace fs = std::filesystem;

// --- protocol ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip) {
  Request req;
  req.op = "rank";
  req.request_id = "q7";
  req.normal = "good";
  req.faulty = "bad";
  req.opts = {"--filters=mpiall,mpisr", "--top=3"};

  std::ostringstream framed;
  write_request(framed, req);
  const auto line = framed.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "a request must be exactly one line";

  const auto back = parse_request(line);
  EXPECT_EQ(back.op, "rank");
  EXPECT_EQ(back.request_id, "q7");
  EXPECT_EQ(back.normal, "good");
  EXPECT_EQ(back.faulty, "bad");
  EXPECT_EQ(back.opts, req.opts);
  EXPECT_TRUE(back.path.empty());
}

TEST(ServeProtocol, MalformedRequestsAreUsageErrors) {
  const auto code_of = [](const std::string& line) {
    try {
      (void)parse_request(line);
    } catch (const OpError& e) {
      return e.exit_code();
    }
    return 0;
  };
  EXPECT_EQ(code_of("this is not json"), 2);
  EXPECT_EQ(code_of("[1,2,3]"), 2);
  EXPECT_EQ(code_of("{}"), 2);  // missing op
  EXPECT_EQ(code_of(R"({"op":"list","request_id":7})"), 2);
  EXPECT_EQ(code_of(R"({"op":"rank","opts":"--top=3"})"), 2);
  EXPECT_EQ(code_of(R"({"op":"rank","opts":[3]})"), 2);
}

TEST(ServeProtocol, ResponseRoundTripAndVersionGate) {
  Response resp;
  resp.request_id = "q1";
  resp.op = "check";
  resp.status = "error";
  resp.exit_code = 3;
  resp.tool_version = "1.0.0";
  resp.command = {"check", "bad", "--engine=replay"};
  resp.wall_ns = 12345;
  resp.cpu_ns = 6789;
  resp.peak_rss_kb = 1024;
  resp.output = "check bad\n";
  resp.chatter = "[salvage] recovered 3/4\n";
  resp.error = "2 violated";
  resp.extras.emplace_back("serve", R"({"runs":2})");

  std::ostringstream framed;
  write_response(framed, resp);
  const auto line = framed.str();
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "a response must be exactly one line";

  const auto back = parse_response(line);
  EXPECT_EQ(back.request_id, "q1");
  EXPECT_EQ(back.op, "check");
  EXPECT_EQ(back.status, "error");
  EXPECT_EQ(back.exit_code, 3);
  EXPECT_EQ(back.command, resp.command);
  EXPECT_EQ(back.output, "check bad\n");
  EXPECT_EQ(back.chatter, "[salvage] recovered 3/4\n");
  EXPECT_EQ(back.error, "2 violated");

  // Extras ride as additional top-level keys.
  const auto doc = util::parse_json(line);
  EXPECT_EQ(doc.at("serve").at("runs").as_uint(), 2u);

  EXPECT_THROW((void)parse_response(R"({"serve_version":99,"request_id":"x"})"),
               std::runtime_error);
}

TEST(ServeProtocol, OkResponseOmitsErrorField) {
  Response resp;
  resp.request_id = "q1";
  resp.op = "list";
  std::ostringstream framed;
  write_response(framed, resp);
  EXPECT_EQ(framed.str().find("\"error\""), std::string::npos);
}

// --- fixtures: synthesized archives ----------------------------------------

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("difftrace_serve_" + std::to_string(::getpid()) + "_" + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return cli::run_command(argv, out_, err_);
  }

  /// Collects an oddeven archive (optionally faulty) under `name`.dtrc.
  std::string collect(const std::string& name, bool faulty) {
    const auto path = (dir_ / (name + ".dtrc")).string();
    std::vector<std::string> argv = {"collect", "--app",  "oddeven", "--nranks",
                                     "8",       "--size", "8",       "--out",
                                     path};
    if (faulty) {
      argv.insert(argv.end(),
                  {"--fault", "swapBug", "--fault-proc", "5", "--fault-iteration", "7"});
    }
    EXPECT_EQ(run(argv), 0) << err_.str();
    return path;
  }

  trace::TraceStore load(const std::string& path) {
    std::ostringstream sink;
    return std::move(cli::load_tolerant(path, sink).store);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

// --- shard store ------------------------------------------------------------

using ShardStoreTest = ServeFixture;

TEST_F(ShardStoreTest, IngestLookupListAndReopen) {
  const auto store_root = dir_ / "store";
  const auto normal = load(collect("normal", false));
  const auto faulty = load(collect("faulty", true));

  std::vector<RunInfo> before;
  {
    ShardStore shards(store_root);
    EXPECT_FALSE(shards.rebuilt_on_open()) << "fresh store is an empty index, not a defect";
    const auto a = shards.ingest("normal", normal, false);
    const auto b = shards.ingest("faulty", faulty, false);
    EXPECT_EQ(a.name, "normal");
    EXPECT_GT(a.bytes, 0u);
    EXPECT_EQ(a.traces, 8u);
    EXPECT_LT(a.shard, kShardCount);
    EXPECT_TRUE(fs::exists(shards.archive_path(a)));
    EXPECT_TRUE(fs::exists(shards.archive_path(b)));
    EXPECT_EQ(shards.size(), 2u);
    ASSERT_TRUE(shards.lookup("faulty").has_value());
    EXPECT_EQ(shards.lookup("faulty")->crc32, b.crc32);
    EXPECT_FALSE(shards.lookup("missing").has_value());
    before = shards.list();
  }

  // Reopen: the persisted index is intact, so no rebuild happens and the
  // listing is identical.
  ShardStore reopened(store_root);
  EXPECT_FALSE(reopened.rebuilt_on_open());
  const auto after = reopened.list();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].crc32, before[i].crc32);
    EXPECT_EQ(after[i].shard, before[i].shard);
    EXPECT_EQ(after[i].bytes, before[i].bytes);
    EXPECT_EQ(after[i].events, before[i].events);
  }
}

TEST_F(ShardStoreTest, ReingestReplacesRun) {
  const auto store_root = dir_ / "store";
  const auto normal = load(collect("normal", false));
  const auto faulty = load(collect("faulty", true));

  ShardStore shards(store_root);
  const auto first = shards.ingest("run", normal, false);
  const auto second = shards.ingest("run", faulty, false);
  EXPECT_EQ(shards.size(), 1u);
  EXPECT_NE(first.crc32, second.crc32);
  EXPECT_TRUE(fs::exists(shards.archive_path(second)));
  if (first.shard != second.shard) {
    EXPECT_FALSE(fs::exists(shards.archive_path(first)))
        << "re-ingest must remove the stale archive across shards";
  }
}

TEST_F(ShardStoreTest, KilledMidIngestRecoversByRebuild) {
  const auto store_root = dir_ / "store";
  const auto normal = load(collect("normal", false));
  const auto faulty = load(collect("faulty", true));

  std::vector<RunInfo> before;
  {
    ShardStore shards(store_root);
    shards.ingest("normal", normal, false);
    shards.ingest("faulty", faulty, false);
    before = shards.list();
  }

  // Simulate a daemon killed mid-ingest: a torn staging file survives in
  // tmp/ and the index is a torn write (garbage bytes).
  std::ofstream(store_root / "tmp" / "victim.1234.part") << "half an archive";
  std::ofstream(store_root / "index.dta") << "definitely not a DTA1 frame";

  ShardStore recovered(store_root);
  EXPECT_TRUE(recovered.rebuilt_on_open());
  const auto after = recovered.list();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].crc32, before[i].crc32) << "rebuild must recompute identical digests";
    EXPECT_EQ(after[i].events, before[i].events);
  }
  EXPECT_FALSE(fs::exists(store_root / "tmp" / "victim.1234.part"))
      << "rebuild clears torn staging files";

  // A deleted archive behind an intact index is also a rebuild, and the
  // vanished run drops out.
  fs::remove(recovered.archive_path(after[0]));
  ShardStore pruned(store_root);
  EXPECT_TRUE(pruned.rebuilt_on_open());
  EXPECT_EQ(pruned.size(), before.size() - 1);
}

TEST_F(ShardStoreTest, RejectsUnsafeRunNames) {
  EXPECT_TRUE(ShardStore::valid_run_name("run-1.normal_x"));
  EXPECT_FALSE(ShardStore::valid_run_name(""));
  EXPECT_FALSE(ShardStore::valid_run_name(".hidden"));
  EXPECT_FALSE(ShardStore::valid_run_name("../escape"));
  EXPECT_FALSE(ShardStore::valid_run_name("a/b"));
  EXPECT_FALSE(ShardStore::valid_run_name("sp ace"));
  EXPECT_FALSE(ShardStore::valid_run_name(std::string(201, 'a')));

  ShardStore shards(dir_ / "store");
  const trace::TraceStore empty;
  EXPECT_THROW((void)shards.ingest("../escape", empty, false), OpError);
}

// --- hot cache --------------------------------------------------------------

TEST(HotCacheTest, HitMissAndEviction) {
  HotCache hot(1);
  int builds = 0;
  const auto make = [&builds]() -> HotCache::StorePtr {
    ++builds;
    return std::make_shared<const trace::TraceStore>();
  };
  const auto a1 = hot.get_store("a", make);
  const auto a2 = hot.get_store("a", make);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a1.get(), a2.get()) << "a hit returns the pinned instance";
  (void)hot.get_store("b", make);  // capacity 1: evicts "a"
  (void)hot.get_store("a", make);
  EXPECT_EQ(builds, 3);
  const auto stats = hot.stats();
  EXPECT_EQ(stats.store_hits, 1u);
  EXPECT_EQ(stats.store_misses, 3u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(HotCacheTest, ZeroCapacityDisablesPinning) {
  HotCache hot(0);
  int builds = 0;
  const auto make = [&builds]() -> HotCache::StorePtr {
    ++builds;
    return std::make_shared<const trace::TraceStore>();
  };
  (void)hot.get_store("a", make);
  (void)hot.get_store("a", make);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(hot.stats().stores, 0u);
}

// --- service (no socket) ----------------------------------------------------

using ServiceTest = ServeFixture;

TEST_F(ServiceTest, ErrorEnvelopes) {
  QueryOps ops;  // no callbacks: error paths below never reach them
  std::ostringstream log;
  Service service({.store_root = dir_ / "store", .hot_capacity = 2}, std::move(ops), log);

  const auto garbage = service.handle_line("not json");
  EXPECT_EQ(garbage.status, "error");
  EXPECT_EQ(garbage.exit_code, 2);
  EXPECT_TRUE(garbage.op.empty());

  const auto unknown_op = service.handle_line(R"({"op":"teleport","request_id":"q1"})");
  EXPECT_EQ(unknown_op.status, "error");
  EXPECT_EQ(unknown_op.exit_code, 2);
  EXPECT_EQ(unknown_op.request_id, "q1") << "a parsed request always echoes its id";

  const auto unknown_run =
      service.handle_line(R"({"op":"rank","request_id":"q2","normal":"a","faulty":"b"})");
  EXPECT_EQ(unknown_run.status, "error");
  EXPECT_EQ(unknown_run.exit_code, 2);
  EXPECT_NE(unknown_run.error.find("unknown run"), std::string::npos);

  const auto shutdown = service.handle_line(R"({"op":"shutdown","request_id":"q3"})");
  EXPECT_EQ(shutdown.status, "ok");
  EXPECT_TRUE(service.shutdown_requested());
}

// --- socket end-to-end through the real commands ----------------------------

class ServeEndToEnd : public ServeFixture {
 protected:
  void TearDown() override {
    stop_daemon();
    ServeFixture::TearDown();
  }

  /// Socket paths must fit sun_path (~107 bytes): keep them short and unique.
  std::string socket_path(int n) {
    return "/tmp/dtserve-" + std::to_string(::getpid()) + "-" + std::to_string(n) + ".sock";
  }

  void start_daemon(const std::string& socket, const std::vector<std::string>& extra = {}) {
    socket_ = socket;
    std::vector<std::string> argv = {"serve", "--socket", socket, "--store",
                                     (dir_ / "store").string()};
    argv.insert(argv.end(), extra.begin(), extra.end());
    daemon_thread_ = std::thread([this, argv]() {
      daemon_exit_ = cli::run_command(argv, daemon_out_, daemon_err_);
    });
  }

  void stop_daemon() {
    if (!daemon_thread_.joinable()) return;
    std::ostringstream out, err;
    (void)cli::run_command({"query", "--socket", socket_, "shutdown", "--retries", "3"}, out,
                           err);
    daemon_thread_.join();
  }

  /// One query against the running daemon; returns its exit code, with the
  /// response body in out_/err_.
  int query(std::vector<std::string> argv) {
    argv.insert(argv.begin(), {"query", "--socket", socket_, "--retries", "10"});
    return run(argv);
  }

  std::string socket_;
  std::thread daemon_thread_;
  std::ostringstream daemon_out_;
  std::ostringstream daemon_err_;
  int daemon_exit_ = -1;
};

TEST_F(ServeEndToEnd, QueryWithoutDaemonFailsFast) {
  EXPECT_EQ(run({"query", "--socket", (dir_ / "no-daemon.sock").string(), "list", "--retries",
                 "2"}),
            1);
  EXPECT_NE(err_.str().find("query:"), std::string::npos);
}

TEST_F(ServeEndToEnd, WarmAnswersAreByteIdenticalToColdCli) {
  const auto normal = collect("normal", false);
  const auto faulty = collect("faulty", true);

  // Cold CLI truth (cache-less: `rank` only uses an artifact cache when
  // `--cache` is passed, so the daemon's resident cache is pure speedup).
  ASSERT_EQ(run({"rank", normal, faulty}), 0) << err_.str();
  const auto cold_rank = out_.str();
  const auto cold_check_code = run({"check", faulty});
  const auto cold_check = out_.str();
  ASSERT_EQ(run({"diffnlr", normal, faulty, "--trace", "5.0"}), 0) << err_.str();
  const auto cold_diff = out_.str();

  start_daemon(socket_path(1));
  ASSERT_EQ(query({"ingest", normal, "--name", "normal"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("ingested normal: 8 trace(s)"), std::string::npos);
  ASSERT_EQ(query({"ingest", faulty, "--name", "faulty"}), 0) << err_.str();

  // First (cold-decode) and second (hot) answers must BOTH equal the CLI.
  ASSERT_EQ(query({"rank", "normal", "faulty"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), cold_rank);
  ASSERT_EQ(query({"rank", "normal", "faulty"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), cold_rank);

  // `check` heads its report with the label it was given — a path cold, the
  // run name warm — so parity is pinned on everything after that line.
  const auto after_label = [](const std::string& text) {
    return text.substr(text.find('\n') + 1);
  };
  EXPECT_EQ(query({"check", "faulty"}), cold_check_code);
  EXPECT_EQ(out_.str().substr(0, 12), "check faulty");
  EXPECT_EQ(after_label(out_.str()), after_label(cold_check));

  ASSERT_EQ(query({"diff", "normal", "faulty", "--trace", "5.0"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), cold_diff);
  ASSERT_EQ(query({"diff", "normal", "faulty", "--trace", "3.0"}), 0) << err_.str();
  EXPECT_NE(out_.str(), cold_diff) << "a different trace reuses the session, not the answer";

  // stats reflects the pinned state; --raw must frame as a single JSON line.
  ASSERT_EQ(query({"stats", "--raw"}), 0) << err_.str();
  const auto doc = util::parse_json(out_.str());
  EXPECT_EQ(doc.at("serve_version").as_uint(), 1u);
  EXPECT_EQ(doc.at("serve").at("runs").as_uint(), 2u);
  EXPECT_GE(doc.at("serve").at("store_hits").as_uint(), 2u);
  EXPECT_GE(doc.at("serve").at("session_hits").as_uint(), 1u);

  stop_daemon();
  EXPECT_EQ(daemon_exit_, 0) << daemon_err_.str();
  EXPECT_NE(daemon_err_.str().find("shutdown complete"), std::string::npos);
}

TEST_F(ServeEndToEnd, UsageErrorsCrossTheWire) {
  collect("normal", false);
  start_daemon(socket_path(2));
  EXPECT_EQ(query({"rank", "nope", "alsono"}), 2);
  EXPECT_NE(err_.str().find("unknown run"), std::string::npos);
  EXPECT_EQ(query({"ingest", (dir_ / "missing.dtrc").string()}), 2);
  stop_daemon();
  EXPECT_EQ(daemon_exit_, 0) << daemon_err_.str();
}

TEST_F(ServeEndToEnd, ConcurrentIngestMatchesSerial) {
  const auto normal = collect("normal", false);
  const auto faulty = collect("faulty", true);
  const std::vector<std::string> sources = {normal, faulty};
  constexpr int kClients = 6;

  // Serial reference daemon.
  std::string serial_list, serial_rank;
  {
    start_daemon(socket_path(3));
    for (int i = 0; i < kClients; ++i) {
      ASSERT_EQ(query({"ingest", sources[i % 2], "--name", "r" + std::to_string(i)}), 0)
          << err_.str();
    }
    ASSERT_EQ(query({"list"}), 0) << err_.str();
    serial_list = out_.str();
    ASSERT_EQ(query({"rank", "r0", "r1"}), 0) << err_.str();
    serial_rank = out_.str();
    stop_daemon();
    ASSERT_EQ(daemon_exit_, 0) << daemon_err_.str();
    fs::remove_all(dir_ / "store");
  }

  // Concurrent daemon: 8 workers, every client ingests in its own thread.
  start_daemon(socket_path(4), {"--jobs", "8"});
  {
    std::vector<std::thread> clients;
    std::vector<int> codes(kClients, -1);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([this, &sources, &codes, i]() {
        std::ostringstream out, err;
        codes[i] = cli::run_command({"query", "--socket", socket_, "--retries", "10", "ingest",
                                     sources[i % 2], "--name", "r" + std::to_string(i)},
                                    out, err);
      });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kClients; ++i) EXPECT_EQ(codes[i], 0) << "client " << i;
  }
  ASSERT_EQ(query({"list"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), serial_list)
      << "concurrent ingest must produce the same shard index as serial";
  ASSERT_EQ(query({"rank", "r0", "r1"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), serial_rank);
  stop_daemon();
  EXPECT_EQ(daemon_exit_, 0) << daemon_err_.str();

  // The store the concurrent daemon left behind reopens without a rebuild.
  ShardStore reopened(dir_ / "store");
  EXPECT_FALSE(reopened.rebuilt_on_open());
  EXPECT_EQ(reopened.size(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace difftrace::serve
