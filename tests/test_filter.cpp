#include "core/filter.hpp"

#include <gtest/gtest.h>

namespace difftrace::core {
namespace {

using trace::EventKind;
using trace::Image;

// --- category predicates (Table I rows) -------------------------------------

struct CategoryCase {
  Category category;
  std::string name;
  bool expected;
};

class CategoryMatch : public ::testing::TestWithParam<CategoryCase> {};

TEST_P(CategoryMatch, MatchesPerTableOne) {
  const auto& param = GetParam();
  EXPECT_EQ(category_matches(param.category, param.name), param.expected)
      << category_short_name(param.category) << " vs " << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, CategoryMatch,
    ::testing::Values(
        CategoryCase{Category::MpiAll, "MPI_Send", true},
        CategoryCase{Category::MpiAll, "MPI_Allreduce", true},
        CategoryCase{Category::MpiAll, "GOMP_barrier", false},
        CategoryCase{Category::MpiAll, "MPID_Send", false},
        CategoryCase{Category::MpiCollectives, "MPI_Barrier", true},
        CategoryCase{Category::MpiCollectives, "MPI_Allreduce", true},
        CategoryCase{Category::MpiCollectives, "MPI_Bcast", true},
        CategoryCase{Category::MpiCollectives, "MPI_Send", false},
        CategoryCase{Category::MpiSendRecv, "MPI_Send", true},
        CategoryCase{Category::MpiSendRecv, "MPI_Isend", true},
        CategoryCase{Category::MpiSendRecv, "MPI_Recv", true},
        CategoryCase{Category::MpiSendRecv, "MPI_Irecv", true},
        CategoryCase{Category::MpiSendRecv, "MPI_Wait", true},
        CategoryCase{Category::MpiSendRecv, "MPI_Barrier", false},
        CategoryCase{Category::MpiInternal, "MPID_Send", true},
        CategoryCase{Category::MpiInternal, "MPIR_Barrier_intra", true},
        CategoryCase{Category::MpiInternal, "MPI_Send", false},
        CategoryCase{Category::OmpAll, "GOMP_parallel_start", true},
        CategoryCase{Category::OmpAll, "gomp_team_start", false},
        CategoryCase{Category::OmpCritical, "GOMP_critical_start", true},
        CategoryCase{Category::OmpCritical, "GOMP_critical_end", true},
        CategoryCase{Category::OmpCritical, "GOMP_barrier", false},
        CategoryCase{Category::OmpMutex, "gomp_mutex_lock", true},
        CategoryCase{Category::Memory, "memcpy", true},
        CategoryCase{Category::Memory, "malloc", true},
        CategoryCase{Category::Memory, "free", true},
        CategoryCase{Category::Memory, "strlen", false},
        CategoryCase{Category::Poll, "poll", true},
        CategoryCase{Category::Poll, "sched_yield", true},
        CategoryCase{Category::String, "strlen", true},
        CategoryCase{Category::String, "strcpy", true},
        CategoryCase{Category::String, "memcpy", false}));

// --- FilterSpec mechanics -------------------------------------------------------

/// Builds a decoded trace of (name, image, kind) triples.
struct EventSeq {
  trace::FunctionRegistry registry;
  std::vector<trace::TraceEvent> events;

  void add(const std::string& name, Image image, EventKind kind) {
    events.push_back({registry.intern(name, image), kind});
  }
  void call_ret(const std::string& name, Image image = Image::Main) {
    add(name, image, EventKind::Call);
    add(name, image, EventKind::Return);
  }
};

TEST(FilterSpec, EverythingKeepsAllCallsAndDropsReturnsByDefault) {
  EventSeq seq;
  seq.call_ret("main");
  seq.call_ret("MPI_Send", Image::MpiLib);
  const auto tokens = FilterSpec::everything().apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"main", "MPI_Send"}));
}

TEST(FilterSpec, KeepingReturnsPrefixesThem) {
  EventSeq seq;
  seq.call_ret("main");
  const auto tokens = FilterSpec::everything().drop_returns(false).apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"main", "ret:main"}));
}

TEST(FilterSpec, PltStubsDroppedByDefault) {
  EventSeq seq;
  seq.call_ret("MPI_Send@plt");
  seq.call_ret("MPI_Send", Image::MpiLib);
  const auto tokens = FilterSpec::mpi_all().apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"MPI_Send"}));
}

TEST(FilterSpec, PltStubsKeptWhenRequested) {
  EventSeq seq;
  seq.call_ret("foo@plt");
  const auto tokens = FilterSpec::everything().drop_plt(false).apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"foo@plt"}));
}

TEST(FilterSpec, CategoryUnionKeepsEither) {
  EventSeq seq;
  seq.call_ret("MPI_Send", Image::MpiLib);
  seq.call_ret("GOMP_critical_start", Image::OmpLib);
  seq.call_ret("computeStuff");
  FilterSpec filter;
  filter.keep(Category::MpiAll).keep(Category::OmpCritical);
  const auto tokens = filter.apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"MPI_Send", "GOMP_critical_start"}));
}

TEST(FilterSpec, CustomRegexKeepsMatches) {
  EventSeq seq;
  seq.call_ret("CPU_Exec");
  seq.call_ret("CPU_Init");
  seq.call_ret("other");
  FilterSpec filter;
  filter.keep_custom("^CPU_");
  const auto tokens = filter.apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"CPU_Exec", "CPU_Init"}));
}

TEST(FilterSpec, CustomRegexCombinesWithCategories) {
  EventSeq seq;
  seq.call_ret("MPI_Send", Image::MpiLib);
  seq.call_ret("CPU_Exec");
  seq.call_ret("other");
  FilterSpec filter = FilterSpec::mpi_all();
  filter.keep_custom("^CPU_Exec$");
  const auto tokens = filter.apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"MPI_Send", "CPU_Exec"}));
}

TEST(FilterSpec, CanonicalNames) {
  EXPECT_EQ(FilterSpec::mpi_all().name(), "11.plt.mpiall");
  EXPECT_EQ(FilterSpec::everything().name(), "11.plt.all");
  FilterSpec f;
  f.drop_returns(false).drop_plt(false).keep(Category::Memory).keep_custom("x");
  EXPECT_EQ(f.name(), "00.mem.cust");
}

TEST(FilterSpec, KeptReturnsRespectKeepSet) {
  EventSeq seq;
  seq.call_ret("MPI_Send", Image::MpiLib);
  seq.call_ret("other");
  const auto tokens = FilterSpec::mpi_all().drop_returns(false).apply(seq.events, seq.registry);
  EXPECT_EQ(tokens, (std::vector<std::string>{"MPI_Send", "ret:MPI_Send"}));
}

}  // namespace
}  // namespace difftrace::core
