#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/writer.hpp"

namespace difftrace::trace {
namespace {

TraceStore sample_store() {
  TraceStore store;
  const auto main_id = store.registry().intern("main", Image::Main);
  const auto send_id = store.registry().intern("MPI_Send", Image::MpiLib);
  TraceWriter w0({0, 0});
  w0.record(EventKind::Call, main_id);
  w0.record(EventKind::Call, send_id);
  w0.record(EventKind::Return, send_id);
  w0.record(EventKind::Return, main_id);
  store.absorb(w0);
  TraceWriter w1({1, 2});
  w1.record(EventKind::Call, main_id);
  w1.freeze();
  store.absorb(w1);
  return store;
}

TEST(ExportCsv, HeaderAndRows) {
  std::ostringstream out;
  export_csv(sample_store(), out);
  const auto text = out.str();
  EXPECT_NE(text.find("proc,thread,logical_ts,kind,function,image\n"), std::string::npos);
  EXPECT_NE(text.find("0,0,0,call,main,main"), std::string::npos);
  EXPECT_NE(text.find("0,0,1,call,MPI_Send,mpi"), std::string::npos);
  EXPECT_NE(text.find("0,0,2,return,MPI_Send,mpi"), std::string::npos);
  EXPECT_NE(text.find("1,2,0,call,main,main"), std::string::npos);
}

TEST(ExportCsv, LogicalTimestampsArePerThread) {
  std::ostringstream out;
  export_csv(sample_store(), out);
  const auto text = out.str();
  // Trace (1,2) restarts its clock at 0.
  EXPECT_NE(text.find("1,2,0,"), std::string::npos);
  EXPECT_EQ(text.find("1,2,1,"), std::string::npos);
}

TEST(ExportJson, StructureAndEscaping) {
  TraceStore store;
  const auto odd = store.registry().intern("weird\"name\\x", Image::SystemLib);
  TraceWriter writer({0, 0});
  writer.record(EventKind::Call, odd);
  store.absorb(writer);

  std::ostringstream out;
  export_json(store, out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"functions\""), std::string::npos);
  EXPECT_NE(text.find("\"traces\""), std::string::npos);
  EXPECT_NE(text.find("weird\\\"name\\\\x"), std::string::npos);
  EXPECT_NE(text.find("\"image\": \"system\""), std::string::npos);
}

TEST(ExportJson, TruncatedFlagAndEventTriples) {
  std::ostringstream out;
  export_json(sample_store(), out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"truncated\": true"), std::string::npos);
  EXPECT_NE(text.find("\"truncated\": false"), std::string::npos);
  EXPECT_NE(text.find("[0,0,0]"), std::string::npos);  // ts=0, call, fid 0
  EXPECT_NE(text.find("[2,1,1]"), std::string::npos);  // ts=2, return, fid 1
}

TEST(ExportJson, EmptyStoreIsValidDocument) {
  std::ostringstream out;
  export_json(TraceStore{}, out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"functions\": [\n  ]"), std::string::npos);
}

TEST(ExportDispatch, SelectsFormat) {
  std::ostringstream csv;
  std::ostringstream json;
  export_store(sample_store(), csv, ExportFormat::Csv);
  export_store(sample_store(), json, ExportFormat::Json);
  EXPECT_NE(csv.str().find("proc,thread"), std::string::npos);
  EXPECT_NE(json.str().find('{'), std::string::npos);
}

}  // namespace
}  // namespace difftrace::trace
