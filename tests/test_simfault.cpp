// simfault tests: the plan grammar (spec + JSON round trips, structured
// out-of-range rejection), the injector's decision engine (seeded
// determinism, arm/disarm lifecycle), the FaultSpec bridge, the catalog's
// validation choke point, and the end-to-end determinism contract — the
// same (seed, plan) yields byte-identical archives at any DIFFTRACE_JOBS,
// and injected-fault archives survive chaos + salvage + check.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "apps/catalog.hpp"
#include "apps/faults.hpp"
#include "apps/runner.hpp"
#include "apps/stencil.hpp"
#include "simfault/injector.hpp"
#include "simfault/plan.hpp"
#include "trace/chaos.hpp"
#include "trace/store.hpp"

namespace difftrace::simfault {
namespace {

namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() / ("difftrace_simfault_" + name);
}

std::vector<std::uint8_t> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

// --- plan grammar -----------------------------------------------------------

TEST(FaultPlan, ParsesCompactSpec) {
  const auto plan = parse_plan("drop@rank=1,op=3");
  EXPECT_EQ(plan.cls, FaultClass::Drop);
  EXPECT_EQ(plan.rank, 1);
  EXPECT_EQ(plan.op_index, 3);
  EXPECT_EQ(plan.thread, -1);
  EXPECT_EQ(plan.iteration, -1);
}

TEST(FaultPlan, ParsesEveryClassName) {
  const std::vector<std::string> names = {
      "drop", "dup",     "reorder",       "misroute",            "corrupt",
      "skip", "delay",   "lockhold",      "swapBug",             "dlBug",
      "ompNoCritical",   "wrongCollectiveSize", "wrongCollectiveOp",
      "skipLagrangeLeapFrog"};
  for (const auto& name : names) {
    const auto cls = fault_class_from_name(name);
    EXPECT_EQ(fault_class_name(cls), name) << name;
  }
  EXPECT_THROW((void)fault_class_from_name("gremlin"), PlanError);
}

TEST(FaultPlan, SpecRoundTrip) {
  for (const auto* spec : {"delay@rank=2,op=6,ticks=24", "skip@rank=1,iter=1",
                           "misroute@rank=0,to=3", "corrupt@rank=3,seed=7",
                           "ompNoCritical@rank=1,thread=2"}) {
    const auto plan = parse_plan(spec);
    EXPECT_EQ(parse_plan(plan.to_spec()), plan) << spec;
  }
}

TEST(FaultPlan, JsonRoundTrip) {
  const auto plan = parse_plan("delay@rank=2,op=6,ticks=24,seed=99");
  const auto from_json = parse_plan(plan.to_json());
  EXPECT_EQ(from_json, plan);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_plan(""), PlanError);
  EXPECT_THROW((void)parse_plan("drop@rank=banana"), PlanError);
  EXPECT_THROW((void)parse_plan("drop@altitude=3"), PlanError);
  EXPECT_THROW((void)parse_plan("drop@rank"), PlanError);
  try {
    (void)parse_plan("drop@rank=zap");
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.field(), "rank");
  }
}

TEST(FaultPlan, ValidateRejectsOutOfRangeCoordinates) {
  const AppShape shape{4, 2, 8};
  EXPECT_NO_THROW(validate_plan(parse_plan("drop@rank=3"), shape));
  EXPECT_THROW(validate_plan(parse_plan("drop@rank=4"), shape), PlanError);
  EXPECT_THROW(validate_plan(parse_plan("lockhold@rank=1,thread=2"), shape), PlanError);
  EXPECT_THROW(validate_plan(parse_plan("skip@rank=1,iter=8"), shape), PlanError);
  EXPECT_THROW(validate_plan(parse_plan("delay@rank=1,ticks=0"), shape), PlanError);
  // lockhold must name a rank: a wildcard would hold every critical section.
  EXPECT_THROW(validate_plan(parse_plan("lockhold@ticks=4"), shape), PlanError);
}

// --- legacy FaultSpec bridge -------------------------------------------------

TEST(FaultBridge, SpecPlanRoundTrip) {
  apps::FaultSpec spec;
  spec.type = apps::FaultType::OmpNoCritical;
  spec.proc = 2;
  spec.thread = 1;
  const auto plan = apps::to_fault_plan(spec);
  EXPECT_EQ(plan.cls, FaultClass::OmpNoCritical);
  EXPECT_EQ(plan.rank, 2);
  EXPECT_EQ(plan.thread, 1);
  const auto back = apps::to_fault_spec(plan);
  EXPECT_EQ(back.type, spec.type);
  EXPECT_EQ(back.proc, spec.proc);
  EXPECT_EQ(back.thread, spec.thread);
}

TEST(FaultBridge, RuntimeClassesHaveNoLegacySpelling) {
  EXPECT_THROW((void)apps::to_fault_spec(parse_plan("drop@rank=1")), PlanError);
  EXPECT_THROW((void)apps::to_fault_spec(parse_plan("delay@rank=1")), PlanError);
}

// --- injector decision engine ------------------------------------------------

TEST(Injector, HooksNeutralWhenDisarmed) {
  Injector::instance().disarm();
  EXPECT_FALSE(hooks::active());
  EXPECT_EQ(hooks::op_enter(0), -1);
  EXPECT_EQ(hooks::delay_ticks(0, 5), 0);
  EXPECT_EQ(hooks::on_message(0, 1, 7).action, hooks::MsgAction::Deliver);
  EXPECT_TRUE(hooks::begin_iteration(0, 0));
  EXPECT_EQ(hooks::lock_hold_ticks(0, 0), 0);
}

TEST(Injector, SessionArmsAndDisarms) {
  const AppShape shape{4, 1, 8};
  {
    const InjectorSession session(parse_plan("delay@rank=1,op=2,ticks=5"), shape);
    EXPECT_TRUE(hooks::active());
    EXPECT_EQ(hooks::op_enter(1), 0);
    EXPECT_EQ(hooks::delay_ticks(1, 0), 0);  // op 0, predicate wants op 2
    EXPECT_EQ(hooks::op_enter(1), 1);
    EXPECT_EQ(hooks::op_enter(1), 2);
    EXPECT_EQ(hooks::delay_ticks(1, 2), 5);
    EXPECT_EQ(hooks::delay_ticks(0, 2), 0);  // wrong rank
    EXPECT_EQ(session.fired(), 1u);
  }
  EXPECT_FALSE(hooks::active());
}

TEST(Injector, DropDecisionIsPerSenderOp) {
  const AppShape shape{4, 1, 8};
  const InjectorSession session(parse_plan("drop@rank=2,op=0"), shape);
  (void)hooks::op_enter(2);  // rank 2 now executing op 0
  EXPECT_EQ(hooks::on_message(2, 3, 7).action, hooks::MsgAction::Drop);
  (void)hooks::op_enter(2);  // op 1: predicate no longer matches
  EXPECT_EQ(hooks::on_message(2, 3, 7).action, hooks::MsgAction::Deliver);
  EXPECT_EQ(hooks::on_message(1, 3, 7).action, hooks::MsgAction::Deliver);
}

TEST(Injector, MisrouteTargetIsSeedDeterministic) {
  const AppShape shape{8, 1, 8};
  int first = -2;
  for (int trial = 0; trial < 3; ++trial) {
    const InjectorSession session(parse_plan("misroute@rank=1,seed=11"), shape);
    (void)hooks::op_enter(1);
    const auto decision = hooks::on_message(1, 2, 7);
    if (decision.action == hooks::MsgAction::Misroute) {
      EXPECT_GE(decision.new_dest, 0);
      EXPECT_LT(decision.new_dest, 8);
      EXPECT_NE(decision.new_dest, 2);
    }
    const int got = decision.action == hooks::MsgAction::Misroute ? decision.new_dest : -1;
    if (trial == 0)
      first = got;
    else
      EXPECT_EQ(got, first);  // same seed, same coordinates => same target
  }
}

TEST(Injector, ExplicitMisrouteTargetWins) {
  const AppShape shape{4, 1, 8};
  const InjectorSession session(parse_plan("misroute@rank=1,to=0"), shape);
  (void)hooks::op_enter(1);
  const auto decision = hooks::on_message(1, 2, 7);
  ASSERT_EQ(decision.action, hooks::MsgAction::Misroute);
  EXPECT_EQ(decision.new_dest, 0);
}

TEST(Injector, CorruptionIsSeededAndNonZero) {
  const AppShape shape{4, 1, 8};
  std::vector<std::byte> a(16, std::byte{0}), b(16, std::byte{0});
  {
    const InjectorSession session(parse_plan("corrupt@rank=1,seed=5"), shape);
    EXPECT_TRUE(hooks::corrupt_contribution(1, a.data(), a.size()));
    EXPECT_FALSE(hooks::corrupt_contribution(0, b.data(), b.size()));
  }
  EXPECT_NE(a, std::vector<std::byte>(16, std::byte{0}));  // pattern never zero
  EXPECT_EQ(b, std::vector<std::byte>(16, std::byte{0}));
  std::vector<std::byte> c(16, std::byte{0});
  {
    const InjectorSession session(parse_plan("corrupt@rank=1,seed=5"), shape);
    EXPECT_TRUE(hooks::corrupt_contribution(1, c.data(), c.size()));
  }
  EXPECT_EQ(a, c);  // same seed => same pattern
}

TEST(Injector, SkipIterFiresOnce) {
  const AppShape shape{4, 1, 8};
  const InjectorSession session(parse_plan("skip@rank=1,iter=2"), shape);
  for (int iter = 0; iter < 4; ++iter) {
    EXPECT_EQ(hooks::begin_iteration(1, iter), iter != 2) << iter;
    EXPECT_TRUE(hooks::begin_iteration(0, iter));
  }
  EXPECT_EQ(session.fired(), 1u);
}

TEST(Injector, ArmRejectsInvalidPlan) {
  const AppShape shape{4, 1, 8};
  EXPECT_THROW(Injector::instance().arm(parse_plan("drop@rank=9"), shape), PlanError);
  EXPECT_FALSE(Injector::instance().armed());
}

// --- catalog choke point -----------------------------------------------------

TEST(Catalog, HasAtLeastEightApps) {
  EXPECT_GE(apps::app_catalog().size(), 8u);
  for (const auto* name :
       {"oddeven", "ilcs", "lulesh", "stencil", "mwq", "pcpipe", "ring", "redtree"})
    EXPECT_NE(apps::find_app(name), nullptr) << name;
  EXPECT_EQ(apps::find_app("nosuch"), nullptr);
}

TEST(Catalog, RejectsOutOfRangePlans) {
  const auto* app = apps::find_app("stencil");
  ASSERT_NE(app, nullptr);
  apps::AppParams params;
  params.plan = parse_plan("drop@rank=99");
  EXPECT_THROW((void)apps::make_rank_fn(*app, params), PlanError);
  params.plan = parse_plan("skip@rank=1,iter=99");
  EXPECT_THROW((void)apps::make_rank_fn(*app, params), PlanError);
}

TEST(Catalog, RejectsAppSideClassTheAppLacks) {
  const auto* app = apps::find_app("stencil");
  ASSERT_NE(app, nullptr);
  apps::AppParams params;
  params.plan = parse_plan("dlBug@rank=1,iter=1");
  EXPECT_THROW((void)apps::make_rank_fn(*app, params), PlanError);
}

// --- end-to-end determinism --------------------------------------------------

simmpi::WorldConfig fast_world(int nranks) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(20'000);
  return config;
}

std::vector<std::uint8_t> collect_bytes(const std::string& app_name, const std::string& spec,
                                        const std::string& tag) {
  const auto* app = apps::find_app(app_name);
  EXPECT_NE(app, nullptr);
  apps::AppParams params;
  params.plan = spec == "none" ? FaultPlan{} : parse_plan(spec);
  auto fn = apps::make_rank_fn(*app, params);
  const auto resolved = apps::resolve_params(*app, params);
  std::optional<InjectorSession> session;
  if (is_runtime_class(resolved.plan.cls)) session.emplace(resolved.plan, app->shape(resolved));
  auto run = apps::run_traced(fast_world(resolved.nranks), fn);
  const auto path = temp_path(app_name + "_" + tag + ".dtrc");
  run.store.save(path.string());
  auto bytes = file_bytes(path);
  fs::remove(path);
  return bytes;
}

TEST(Determinism, SameSeedSamePlanByteIdenticalAtAnyJobCount) {
  // Collection never touches the pool, and every injector decision hashes
  // the plan seed with logical coordinates — so DIFFTRACE_JOBS must not be
  // able to change a single archive byte.
  for (const auto* spec : {"delay@rank=2,op=6,ticks=24", "skip@rank=1,iter=1", "drop@rank=1"}) {
    std::vector<std::vector<std::uint8_t>> runs;
    for (const auto* jobs : {"1", "2", "8"}) {
      ::setenv("DIFFTRACE_JOBS", jobs, 1);
      runs.push_back(collect_bytes("stencil", spec, std::string("jobs") + jobs));
    }
    ::unsetenv("DIFFTRACE_JOBS");
    EXPECT_FALSE(runs[0].empty());
    EXPECT_EQ(runs[0], runs[1]) << spec;
    EXPECT_EQ(runs[0], runs[2]) << spec;
  }
}

TEST(Determinism, RepeatedInjectedRunsAreByteIdentical) {
  const auto a = collect_bytes("mwq", "misroute@rank=1", "a");
  const auto b = collect_bytes("mwq", "misroute@rank=1", "b");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // The seed is part of the plan identity: corrupt patterns must change.
  const auto* app = apps::find_app("stencil");
  ASSERT_NE(app, nullptr);
  std::vector<double> sinks[2];
  int i = 0;
  for (const auto* spec : {"corrupt@rank=1,seed=5", "corrupt@rank=1,seed=6"}) {
    apps::AppParams params;
    params.plan = parse_plan(spec);
    const auto resolved = apps::resolve_params(*app, params);
    std::vector<double> residuals(static_cast<std::size_t>(resolved.nranks), 0.0);
    // Rebuild with a residual sink so the corrupted reduction is observable.
    apps::StencilConfig config;
    config.nranks = resolved.nranks;
    config.cells_per_rank = resolved.size;
    config.iterations = resolved.iterations;
    config.residual_sink = &residuals;
    const InjectorSession session(resolved.plan, app->shape(resolved));
    auto run = apps::run_traced(fast_world(resolved.nranks),
                                [&config](simmpi::Comm& c) { apps::stencil_rank(c, config); });
    EXPECT_TRUE(run.report.all_completed()) << spec;
    EXPECT_GT(session.fired(), 0u) << spec;
    sinks[i++] = residuals;
  }
  EXPECT_FALSE(sinks[0].empty());
  EXPECT_NE(sinks[0], sinks[1]);
}

// --- chaos + salvage over injected-fault archives ----------------------------

TEST(ChaosSalvage, InjectedHangArchiveSurvivesMutationAndCheck) {
  // A drop-injected run deadlocks; the watchdog truncates the archive like a
  // killed job. That archive, further damaged by chaos, must still salvage
  // and check without throwing — degraded evidence, never a crash.
  const auto* app = apps::find_app("ring");
  ASSERT_NE(app, nullptr);
  apps::AppParams params;
  params.plan = parse_plan("drop@rank=1");
  auto fn = apps::make_rank_fn(*app, params);
  const auto resolved = apps::resolve_params(*app, params);
  trace::TraceStore store;
  {
    const InjectorSession session(resolved.plan, app->shape(resolved));
    auto run = apps::run_traced(fast_world(resolved.nranks), fn);
    EXPECT_TRUE(run.report.deadlock);
    EXPECT_GT(session.fired(), 0u);
    store = std::move(run.store);
  }
  const auto clean = temp_path("chaos_clean.dtrc");
  store.save(clean.string());
  const auto archive = trace::chaos_read_file(clean);
  fs::remove(clean);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto mutated = trace::chaos_inject(archive, trace::ChaosFault::Truncate, seed);
    const auto hurt = temp_path("chaos_hurt.dtrc");
    trace::chaos_write_file(hurt, mutated.bytes);
    const auto result = trace::TraceStore::salvage(hurt);
    fs::remove(hurt);
    if (result.store.size() == 0) continue;  // everything lost: acceptable, not a crash
    EXPECT_NO_THROW({
      const auto report = analyze::run_checks(result.store);
      (void)report.exit_code();
    }) << "seed " << seed;
  }
}

}  // namespace
}  // namespace difftrace::simfault
