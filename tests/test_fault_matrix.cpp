// Golden-verdict wall for `difftrace matrix`: the apps × faults grid must
// keep producing the verdicts the paper's accuracy claims rest on. The
// small-grid tests pin report shape, arg validation, hang resolution, and
// jobs-count invariance; DefaultGridMatchesGolden re-runs the full default
// grid and holds every pinned (deterministic-app) cell to
// tests/golden_matrix.json — regenerate that file deliberately, never by
// letting a regression rewrite it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cli/commands.hpp"
#include "util/json.hpp"

namespace difftrace::cli {
namespace {

namespace fs = std::filesystem;

class FaultMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("difftrace_matrix_" + std::to_string(::getpid()) + "_" + info->name());
    fs::create_directories(dir_);
    report_ = (dir_ / "matrix.json").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return run_command(argv, out_, err_);
  }

  static util::JsonValue load_json(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return util::parse_json(text.str());
  }

  /// Cell lookup by (app, spec); fails the test when absent.
  static const util::JsonValue* find_cell(const util::JsonValue& report, const std::string& app,
                                          const std::string& spec) {
    for (const auto& cell : report.at("cells").array) {
      if (cell.at("app").as_string() == app && cell.at("spec").as_string() == spec) return &cell;
    }
    ADD_FAILURE() << "no cell for " << app << " x " << spec;
    return nullptr;
  }

  fs::path dir_;
  std::string report_;
  std::ostringstream out_;
  std::ostringstream err_;
};

// --- argument validation -----------------------------------------------------

TEST_F(FaultMatrix, RequiresOut) {
  EXPECT_EQ(run({"matrix"}), 2);
  EXPECT_NE(err_.str().find("out"), std::string::npos);
}

TEST_F(FaultMatrix, UnknownAppFails) {
  EXPECT_EQ(run({"matrix", "--out", report_, "--apps", "nosuchapp"}), 2);
  EXPECT_NE(err_.str().find("nosuchapp"), std::string::npos);
}

TEST_F(FaultMatrix, BadFaultSpecFails) {
  EXPECT_EQ(run({"matrix", "--out", report_, "--faults", "gremlin@rank=1"}), 2);
  EXPECT_EQ(run({"matrix", "--out", report_, "--faults", "drop@rank=banana"}), 2);
  EXPECT_EQ(run({"matrix", "--out", report_, "--cell-timeout-ms", "0"}), 2);
}

// --- small grids -------------------------------------------------------------

TEST_F(FaultMatrix, SmallGridReportShape) {
  ASSERT_EQ(run({"matrix", "--out", report_, "--quiet", "--apps", "oddeven,stencil", "--faults",
                 "none;delay@rank=1,op=6,ticks=24;swapBug@rank=1,iter=1"}),
            0)
      << err_.str();
  const auto report = load_json(report_);
  EXPECT_EQ(report.at("matrix_version").as_int(), 1);
  EXPECT_EQ(report.at("generator").as_string(), "difftrace matrix");
  ASSERT_EQ(report.at("apps").array.size(), 2u);
  ASSERT_EQ(report.at("faults").array.size(), 3u);
  ASSERT_EQ(report.at("cells").array.size(), 6u);
  EXPECT_EQ(report.at("summary").at("cells").as_int(), 6);

  // Clean columns ground the wall: no fault, no diagnostic, no suspect.
  for (const auto* app : {"oddeven", "stencil"}) {
    const auto* cell = find_cell(report, app, "none");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->at("run").as_string(), "completed");
    EXPECT_EQ(cell->at("verdict").as_string(), "clean");
    EXPECT_EQ(cell->at("check_exit").as_int(), 0);
    EXPECT_TRUE(cell->at("pinned").as_bool());
  }

  // Delay completes but leaves injected tick scopes: sweep must put the
  // injected rank first even though no checker rule names the fault.
  for (const auto* app : {"oddeven", "stencil"}) {
    const auto* cell = find_cell(report, app, "delay@rank=1,op=6,ticks=24");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->at("run").as_string(), "completed");
    EXPECT_EQ(cell->at("verdict").as_string(), "rank-only");
    EXPECT_TRUE(cell->at("fired").as_bool());
    EXPECT_TRUE(cell->at("rank_first").as_bool());
    EXPECT_EQ(cell->at("consensus").as_int(), 1);
  }

  // swapBug is oddeven's planted bug; stencil does not implement it.
  const auto* swap_cell = find_cell(report, "oddeven", "swapBug@rank=1,iter=1");
  ASSERT_NE(swap_cell, nullptr);
  EXPECT_EQ(swap_cell->at("verdict").as_string(), "rank-only");
  const auto* skip_cell = find_cell(report, "stencil", "swapBug@rank=1,iter=1");
  ASSERT_NE(skip_cell, nullptr);
  EXPECT_EQ(skip_cell->at("run").as_string(), "skipped");
  EXPECT_EQ(skip_cell->at("verdict").as_string(), "skipped");
  EXPECT_EQ(report.at("summary").at("skipped").as_int(), 1);
}

TEST_F(FaultMatrix, InjectedDeadlocksResolveToHang) {
  // The watchdog bound is the satellite contract: a DlBug-class deadlock can
  // never wedge the matrix — it must time out into a `hang` verdict.
  ASSERT_EQ(run({"matrix", "--out", report_, "--quiet", "--cell-timeout-ms", "8000", "--apps",
                 "oddeven", "--faults", "none;drop@rank=1;dlBug@rank=1,iter=1"}),
            0)
      << err_.str();
  const auto report = load_json(report_);

  const auto* drop_cell = find_cell(report, "oddeven", "drop@rank=1");
  ASSERT_NE(drop_cell, nullptr);
  EXPECT_EQ(drop_cell->at("run").as_string(), "hang");
  EXPECT_EQ(drop_cell->at("verdict").as_string(), "hang");
  EXPECT_TRUE(drop_cell->at("fired").as_bool());
  // Hang cells still grade their truncated archives: the starvation rules
  // must fire on the watchdog-frozen evidence.
  EXPECT_TRUE(drop_cell->at("check_ok").as_bool());
  EXPECT_NE(drop_cell->at("check_exit").as_int(), 0);

  const auto* dl_cell = find_cell(report, "oddeven", "dlBug@rank=1,iter=1");
  ASSERT_NE(dl_cell, nullptr);
  EXPECT_EQ(dl_cell->at("run").as_string(), "hang");
  EXPECT_EQ(dl_cell->at("verdict").as_string(), "hang");

  EXPECT_EQ(report.at("summary").at("hangs").as_int(), 2);
}

TEST_F(FaultMatrix, JobsCountDoesNotChangeTheWall) {
  // --jobs only parallelizes grading; every cell's verdict, consensus, and
  // diagnostics must be identical at any job count.
  const std::string grid = "none;delay@rank=1,op=6,ticks=24;misroute@rank=1";
  const auto one = (dir_ / "jobs1.json").string();
  const auto four = (dir_ / "jobs4.json").string();
  ASSERT_EQ(run({"matrix", "--out", one, "--quiet", "--jobs", "1", "--cell-timeout-ms", "8000",
                 "--apps", "stencil,mwq", "--faults", grid}),
            0)
      << err_.str();
  ASSERT_EQ(run({"matrix", "--out", four, "--quiet", "--jobs", "4", "--cell-timeout-ms", "8000",
                 "--apps", "stencil,mwq", "--faults", grid}),
            0)
      << err_.str();
  const auto a = load_json(one);
  const auto b = load_json(four);
  ASSERT_EQ(a.at("cells").array.size(), b.at("cells").array.size());
  for (std::size_t i = 0; i < a.at("cells").array.size(); ++i) {
    const auto& ca = a.at("cells").array[i];
    const auto& cb = b.at("cells").array[i];
    ASSERT_EQ(ca.at("app").as_string(), cb.at("app").as_string());
    ASSERT_EQ(ca.at("spec").as_string(), cb.at("spec").as_string());
    const std::string where = ca.at("app").as_string() + " x " + ca.at("spec").as_string();
    EXPECT_EQ(ca.at("run").as_string(), cb.at("run").as_string()) << where;
    EXPECT_EQ(ca.at("verdict").as_string(), cb.at("verdict").as_string()) << where;
    EXPECT_EQ(ca.at("consensus").as_int(), cb.at("consensus").as_int()) << where;
    EXPECT_EQ(ca.at("rank_first").as_bool(), cb.at("rank_first").as_bool()) << where;
    EXPECT_EQ(ca.at("check_exit").as_int(), cb.at("check_exit").as_int()) << where;
  }
}

// --- the full wall -----------------------------------------------------------

TEST_F(FaultMatrix, DefaultGridMatchesGolden) {
  ASSERT_EQ(run({"matrix", "--out", report_, "--quiet", "--cell-timeout-ms", "8000"}), 0)
      << err_.str();
  const auto report = load_json(report_);

  // Inline anchors first: load-bearing verdicts that must hold even if
  // someone regenerates the golden file without looking.
  const std::vector<std::tuple<std::string, std::string, std::string>> anchors = {
      {"oddeven", "none", "clean"},
      {"oddeven", "swapBug@rank=1,iter=1", "rank-only"},
      {"oddeven", "dlBug@rank=1,iter=1", "hang"},
      {"oddeven", "drop@rank=1", "hang"},
      {"stencil", "delay@rank=1,op=6,ticks=24", "rank-only"},
      {"lulesh", "skipLagrangeLeapFrog@rank=1", "hang"},
      {"ring", "reorder@rank=1", "hang"},
  };
  for (const auto& [app, spec, verdict] : anchors) {
    const auto* cell = find_cell(report, app, spec);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->at("verdict").as_string(), verdict) << app << " x " << spec;
  }

  // ilcs races on purpose: its cells must never be pinned.
  for (const auto& cell : report.at("cells").array) {
    if (cell.at("app").as_string() == "ilcs") {
      EXPECT_FALSE(cell.at("pinned").as_bool());
    }
  }

  // Then the full wall: every pinned golden cell must reproduce exactly.
  const auto golden = load_json(std::string(DIFFTRACE_REPO_ROOT) + "/tests/golden_matrix.json");
  ASSERT_EQ(golden.at("apps").array.size(), report.at("apps").array.size());
  ASSERT_EQ(golden.at("faults").array.size(), report.at("faults").array.size());
  std::size_t pinned = 0;
  for (const auto& want : golden.at("cells").array) {
    if (!want.at("pinned").as_bool()) continue;
    ++pinned;
    const auto app = want.at("app").as_string();
    const auto spec = want.at("spec").as_string();
    const auto* got = find_cell(report, app, spec);
    ASSERT_NE(got, nullptr);
    const std::string where = app + " x " + spec;
    EXPECT_EQ(got->at("run").as_string(), want.at("run").as_string()) << where;
    EXPECT_EQ(got->at("verdict").as_string(), want.at("verdict").as_string()) << where;
    EXPECT_EQ(got->at("rank_first").as_bool(), want.at("rank_first").as_bool()) << where;
    EXPECT_EQ(got->at("check_ok").as_bool(), want.at("check_ok").as_bool()) << where;
    EXPECT_EQ(got->at("fired").as_bool(), want.at("fired").as_bool()) << where;
  }
  // A gutted golden file must not pass silently: the default grid pins all
  // deterministic-app cells (7 of 8 apps).
  EXPECT_GE(pinned, 90u);
}

}  // namespace
}  // namespace difftrace::cli
