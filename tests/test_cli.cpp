#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/commands.hpp"
#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace difftrace::cli {
namespace {

// --- Args -------------------------------------------------------------------

TEST(Args, PositionalAndOptions) {
  const Args args({"rank", "a.dtrc", "b.dtrc", "--k", "20", "--color"});
  ASSERT_EQ(args.positional().size(), 3u);
  EXPECT_EQ(args.positional_at(1, "x"), "a.dtrc");
  EXPECT_EQ(args.int_or("k", 10), 20);
  EXPECT_TRUE(args.flag("color"));
  EXPECT_FALSE(args.flag("missing"));
}

TEST(Args, EqualsSyntax) {
  const Args args({"--filter=mem+ompcrit", "--k=5"});
  EXPECT_EQ(args.required("filter"), "mem+ompcrit");
  EXPECT_EQ(args.int_or("k", 0), 5);
}

TEST(Args, FlagFollowedByOption) {
  const Args args({"--color", "--trace", "5.0"});
  EXPECT_TRUE(args.flag("color"));
  EXPECT_EQ(args.required("trace"), "5.0");
}

TEST(Args, MissingRequiredThrows) {
  const Args args({"cmd"});
  EXPECT_THROW((void)args.required("out"), ArgError);
  EXPECT_THROW((void)args.positional_at(1, "path"), ArgError);
}

TEST(Args, BadIntegerThrows) {
  const Args args({"--k", "ten"});
  EXPECT_THROW((void)args.int_or("k", 0), ArgError);
}

TEST(Args, EmptyOptionNameThrows) { EXPECT_THROW(Args({"--"}), ArgError); }

// --- filter mini-language --------------------------------------------------------

TEST(ParseFilter, Categories) {
  const auto filter = parse_filter("mem+ompcrit+cust=^CPU_");
  EXPECT_TRUE(filter.keeps_name("memcpy"));
  EXPECT_TRUE(filter.keeps_name("GOMP_critical_start"));
  EXPECT_TRUE(filter.keeps_name("CPU_Exec"));
  EXPECT_FALSE(filter.keeps_name("MPI_Send"));
  EXPECT_TRUE(filter.drops_returns());
  EXPECT_TRUE(filter.drops_plt());
}

TEST(ParseFilter, ModifiersKeepReturnsAndPlt) {
  const auto filter = parse_filter("rets+plt+mpiall");
  EXPECT_FALSE(filter.drops_returns());
  EXPECT_FALSE(filter.drops_plt());
  EXPECT_TRUE(filter.keeps_name("MPI_Send"));
}

TEST(ParseFilter, AllKeepsEverything) {
  const auto filter = parse_filter("all");
  EXPECT_TRUE(filter.keeps_name("anything_at_all"));
}

TEST(ParseFilter, RejectsUnknownAndEmpty) {
  EXPECT_THROW((void)parse_filter("bogus"), ArgError);
  EXPECT_THROW((void)parse_filter("mem++ompcrit"), ArgError);
  EXPECT_THROW((void)parse_filter("rets"), ArgError);  // modifiers only select nothing
}

// --- command round trip -------------------------------------------------------------

class CliRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process in parallel: the directory
    // must be unique per process AND per test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("difftrace_cli_" + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::create_directories(dir_);
    normal_ = (dir_ / "normal.dtrc").string();
    faulty_ = (dir_ / "faulty.dtrc").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return run_command(argv, out_, err_);
  }

  std::filesystem::path dir_;
  std::string normal_;
  std::string faulty_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliRoundTrip, HelpPrintsUsage) {
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage: difftrace"), std::string::npos);
  EXPECT_EQ(run({}), 0);
}

TEST_F(CliRoundTrip, UnknownCommandFails) {
  EXPECT_EQ(run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliRoundTrip, CollectInfoDecodeNlr) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("saved 4 trace(s)"), std::string::npos);

  ASSERT_EQ(run({"info", normal_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("traces:             4"), std::string::npos);
  EXPECT_NE(out_.str().find("0.0"), std::string::npos);

  ASSERT_EQ(run({"decode", normal_, "--trace", "1.0", "--filter", "mpiall"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("MPI_Init"), std::string::npos);
  EXPECT_NE(out_.str().find("MPI_Finalize"), std::string::npos);

  ASSERT_EQ(run({"nlr", normal_, "--trace", "1.0", "--filter", "mpiall"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("L0^"), std::string::npos);
  EXPECT_NE(out_.str().find("L0 = ["), std::string::npos);
}

TEST_F(CliRoundTrip, RankDiffnlrProgressPipeline) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "16", "--size", "8", "--out", normal_}),
            0)
      << err_.str();
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "16", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "5", "--fault-iteration", "7"}),
            0)
      << err_.str();

  ASSERT_EQ(run({"rank", normal_, faulty_, "--filters", "mpiall,mpisr"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("consensus suspicious trace:   5.0"), std::string::npos);

  ASSERT_EQ(run({"diffnlr", normal_, faulty_, "--trace", "5.0", "--filter", "mpiall"}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("- L"), std::string::npos);
  EXPECT_NE(out_.str().find("= MPI_Finalize"), std::string::npos);

  ASSERT_EQ(run({"progress", normal_, faulty_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("least progressed:"), std::string::npos);
}

TEST_F(CliRoundTrip, OutliersSingleRun) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "dlBug", "--fault-proc", "3", "--fault-iteration", "2"}),
            0)
      << err_.str();
  EXPECT_NE(err_.str().find("[watchdog]"), std::string::npos);
  ASSERT_EQ(run({"outliers", faulty_, "--attr", "sing.actual"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("Outlier score"), std::string::npos);
  EXPECT_NE(out_.str().find("dendrogram:"), std::string::npos);
}

TEST_F(CliRoundTrip, ExportFormats) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "2", "--size", "4", "--out", normal_}),
            0);
  ASSERT_EQ(run({"export", normal_, "--format", "csv"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("proc,thread,logical_ts"), std::string::npos);

  const auto json_path = (dir_ / "t.json").string();
  ASSERT_EQ(run({"export", normal_, "--format", "json", "--out", json_path}), 0) << err_.str();
  EXPECT_TRUE(std::filesystem::exists(json_path));

  EXPECT_EQ(run({"export", normal_, "--format", "xml"}), 2);
}

TEST_F(CliRoundTrip, CollectValidatesArguments) {
  EXPECT_EQ(run({"collect", "--app", "nosuch", "--out", normal_}), 2);
  EXPECT_EQ(run({"collect", "--app", "oddeven"}), 2);  // missing --out
  EXPECT_EQ(run({"collect", "--app", "oddeven", "--out", normal_, "--fault", "dlBug"}), 2);
  EXPECT_NE(err_.str().find("--fault-proc"), std::string::npos);
}

TEST_F(CliRoundTrip, LoadErrorsAreArgErrors) {
  EXPECT_EQ(run({"info", (dir_ / "missing.dtrc").string()}), 2);
  EXPECT_NE(err_.str().find("cannot load"), std::string::npos);
}

TEST_F(CliRoundTrip, BadTraceKeyRejected) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "2", "--size", "4", "--out", normal_}),
            0);
  EXPECT_EQ(run({"decode", normal_, "--trace", "x.y"}), 2);
  EXPECT_NE(err_.str().find("bad trace id"), std::string::npos);
}

// --- observability -----------------------------------------------------------

TEST_F(CliRoundTrip, InfoJsonIsParsableAndMatchesTable) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"info", normal_, "--json"}), 0) << err_.str();
  const auto doc = util::parse_json(out_.str());
  EXPECT_EQ(doc.at("traces").as_uint(), 4u);
  EXPECT_GT(doc.at("events").as_uint(), 0u);
  EXPECT_GT(doc.at("compression_ratio").as_double(), 0.0);
  ASSERT_TRUE(doc.at("blobs").is_array());
  ASSERT_EQ(doc.at("blobs").array.size(), 4u);
  EXPECT_EQ(doc.at("blobs").array[0].at("codec").as_string(), "parlot");
  EXPECT_FALSE(doc.at("blobs").array[0].at("salvaged").as_bool());
}

TEST_F(CliRoundTrip, StatsFlagWritesManifestAndStatsCommandRendersIt) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "5", "--fault-iteration", "7"}),
            0);

  const auto manifest_path = (dir_ / "manifest.json").string();
  // Phase coverage is wall-time based, and on a loaded machine (parallel
  // ctest) a preemption landing between depth-1 spans shows up as dark
  // time. The property under test is that a clean run covers >= 90% —
  // retry a few times so scheduler noise cannot fail the suite.
  obs::RunManifest manifest;
  for (int attempt = 0; attempt < 5; ++attempt) {
    ASSERT_EQ(run({"rank", normal_, faulty_, "--stats=" + manifest_path}), 0) << err_.str();
    std::ifstream file(manifest_path);
    std::ostringstream text;
    text << file.rdbuf();
    manifest = obs::RunManifest::from_json_text(text.str());
    if (manifest.phase_coverage() >= 0.90) break;
  }
  EXPECT_NE(err_.str().find("[stats] manifest written"), std::string::npos);
  // Results stay clean: the manifest note goes to err, the table to out.
  EXPECT_EQ(out_.str().find("[stats]"), std::string::npos);

  EXPECT_EQ(manifest.exit_code, 0);
  ASSERT_EQ(manifest.command.size(), 4u);
  EXPECT_EQ(manifest.command[0], "rank");
  ASSERT_EQ(manifest.inputs.size(), 2u);
  EXPECT_TRUE(manifest.inputs[0].ok);
  EXPECT_GT(manifest.wall_ns, 0u);
  EXPECT_GE(manifest.phase_coverage(), 0.90);
  // Every stage the sweep exercises reported in.
  const auto counter_value = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : manifest.counters)
      if (c.name == name) return c.value;
    return 0;
  };
  EXPECT_GT(counter_value("trace.blobs_decoded"), 0u);
  EXPECT_GT(counter_value("filter.events_in"), 0u);
  EXPECT_GT(counter_value("nlr.tokens_in"), 0u);
  EXPECT_GT(counter_value("jsm.cells"), 0u);

  ASSERT_EQ(run({"stats", manifest_path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("difftrace run manifest"), std::string::npos);
  EXPECT_NE(out_.str().find("phase coverage"), std::string::npos);
  EXPECT_NE(out_.str().find("Counter"), std::string::npos);
}

TEST_F(CliRoundTrip, BareStatsFlagRendersToErr) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "2", "--size", "4", "--out", normal_}),
            0);
  ASSERT_EQ(run({"info", normal_, "--stats"}), 0);
  EXPECT_NE(err_.str().find("difftrace run manifest"), std::string::npos);
  EXPECT_EQ(out_.str().find("difftrace run manifest"), std::string::npos);
}

TEST_F(CliRoundTrip, SelfTraceProducesAnalyzableArchive) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "5", "--fault-iteration", "7"}),
            0);

  const auto self_path = (dir_ / "self.dtrc").string();
  ASSERT_EQ(run({"rank", normal_, faulty_, "--self-trace=" + self_path}), 0) << err_.str();
  EXPECT_NE(err_.str().find("[self-trace]"), std::string::npos);

  // The self-trace is a well-formed archive...
  ASSERT_EQ(run({"fsck", self_path}), 0) << out_.str();
  // ...whose NLR names the pipeline's phases (rank/load/sweep run on the
  // main thread, which is always stream 0.0 of the self-trace).
  ASSERT_EQ(run({"nlr", self_path, "--trace", "0.0", "--filter", "all"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("rank"), std::string::npos);
  EXPECT_NE(out_.str().find("sweep"), std::string::npos);
}

TEST_F(CliRoundTrip, SalvageChatterGoesToErrNotOut) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0);
  const auto damaged = (dir_ / "damaged.dtrc").string();
  ASSERT_EQ(run({"chaos", normal_, "--out", damaged, "--fault", "bitflip", "--seed", "3"}), 0)
      << err_.str();
  ASSERT_EQ(run({"info", damaged, "--json"}), 0) << err_.str();
  EXPECT_NE(err_.str().find("[salvage]"), std::string::npos);
  // stdout stays machine-readable even for a damaged archive.
  EXPECT_EQ(out_.str().find("[salvage]"), std::string::npos);
  EXPECT_NO_THROW((void)util::parse_json(out_.str()));
}

TEST_F(CliRoundTrip, RankJobsAndCacheAreByteIdentical) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "3", "--fault-iteration", "2"}),
            0);
  const auto cache_dir = (dir_ / "cache").string();

  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "1"}), 0) << err_.str();
  const auto serial = out_.str();
  EXPECT_NE(serial.find("consensus suspicious trace"), std::string::npos);

  // Parallel, legacy alias, cold cache, warm cache: all byte-identical.
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "4"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), serial);
  ASSERT_EQ(run({"rank", normal_, faulty_, "--threads", "4"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), serial);
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "4", "--cache=" + cache_dir}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), serial);
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "4", "--cache=" + cache_dir}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), serial);
}

TEST_F(CliRoundTrip, CacheCommandStatsClearVerify) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "2", "--fault-iteration", "1"}),
            0);
  const auto cache_dir = (dir_ / "cache").string();
  ASSERT_EQ(run({"rank", normal_, faulty_, "--cache=" + cache_dir}), 0) << err_.str();
  const auto ranked = out_.str();

  ASSERT_EQ(run({"cache", "stats", "--cache=" + cache_dir}), 0) << err_.str();
  EXPECT_NE(out_.str().find("entries:"), std::string::npos);
  EXPECT_EQ(out_.str().find("entries:         0"), std::string::npos);

  ASSERT_EQ(run({"cache", "verify", "--cache=" + cache_dir}), 0) << out_.str();
  EXPECT_NE(out_.str().find("0 bad"), std::string::npos);

  // Plant a defect: verify fails, but rank recomputes cleanly through it.
  std::filesystem::path planted;
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) planted = entry.path();
  ASSERT_FALSE(planted.empty());
  std::filesystem::resize_file(planted, 4);
  EXPECT_EQ(run({"cache", "verify", "--cache=" + cache_dir}), 1);
  EXPECT_NE(out_.str().find("1 bad"), std::string::npos);
  ASSERT_EQ(run({"rank", normal_, faulty_, "--cache=" + cache_dir}), 0) << err_.str();
  EXPECT_EQ(out_.str(), ranked);

  ASSERT_EQ(run({"cache", "clear", "--cache=" + cache_dir}), 0);
  EXPECT_NE(out_.str().find("removed"), std::string::npos);
  ASSERT_EQ(run({"cache", "stats", "--cache=" + cache_dir}), 0);
  EXPECT_NE(out_.str().find("entries:         0"), std::string::npos);

  EXPECT_EQ(run({"cache", "frobnicate", "--cache=" + cache_dir}), 2);
}

TEST_F(CliRoundTrip, InfoJsonAndManifestCarryEngineFields) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "2", "--fault-iteration", "1"}),
            0);

  ASSERT_EQ(run({"info", normal_, "--json", "--jobs", "3"}), 0) << err_.str();
  const auto doc = util::parse_json(out_.str());
  EXPECT_EQ(doc.at("jobs").as_uint(), 3u);
  EXPECT_EQ(doc.at("cache_dir").as_string(), "");
  ASSERT_NE(doc.find("cache_hits"), nullptr);
  ASSERT_NE(doc.find("cache_misses"), nullptr);

  const auto cache_dir = (dir_ / "cache").string();
  const auto manifest_path = (dir_ / "manifest.json").string();
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "2", "--cache=" + cache_dir,
                 "--stats=" + manifest_path}),
            0)
      << err_.str();
  std::ifstream file(manifest_path);
  std::ostringstream text;
  text << file.rdbuf();
  const auto manifest = obs::RunManifest::from_json_text(text.str());
  EXPECT_EQ(manifest.jobs, 2u);
  EXPECT_EQ(manifest.cache_dir, cache_dir);
  EXPECT_EQ(manifest.cache_hits, 0u);   // cold run
  EXPECT_GT(manifest.cache_misses, 0u);
  // The rendered manifest surfaces the same fields.
  ASSERT_EQ(run({"stats", manifest_path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("jobs:           2"), std::string::npos);
  EXPECT_NE(out_.str().find("cache misses:"), std::string::npos);

  // Warm run: hits recorded in the manifest.
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "2", "--cache=" + cache_dir,
                 "--stats=" + manifest_path}),
            0)
      << err_.str();
  std::ifstream file2(manifest_path);
  std::ostringstream text2;
  text2 << file2.rdbuf();
  const auto warm = obs::RunManifest::from_json_text(text2.str());
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST_F(CliRoundTrip, CheckEngineFlagSelectsAndValidates) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_}),
            0)
      << err_.str();

  // Every engine name is accepted and agrees on a clean archive.
  EXPECT_EQ(run({"check", normal_, "--engine", "replay"}), 0) << err_.str();
  const auto replay_out = out_.str();
  EXPECT_EQ(run({"check", normal_, "--engine", "summary"}), 0) << err_.str();
  EXPECT_EQ(run({"check", normal_, "--engine", "auto"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), replay_out);

  // An unknown engine is a usage error (exit 2) naming the valid ones.
  EXPECT_EQ(run({"check", normal_, "--engine", "quantum"}), 2);
  EXPECT_NE(err_.str().find("unknown engine 'quantum'"), std::string::npos);
  for (const auto* name : {"replay", "summary", "auto"})
    EXPECT_NE(err_.str().find(name), std::string::npos);

  // The engine choice lands in the run manifest.
  const auto manifest_path = (dir_ / "manifest.json").string();
  ASSERT_EQ(run({"check", normal_, "--engine", "summary", "--stats=" + manifest_path}), 0)
      << err_.str();
  std::ifstream file(manifest_path);
  std::ostringstream text;
  text << file.rdbuf();
  const auto manifest = obs::RunManifest::from_json_text(text.str());
  EXPECT_EQ(manifest.check_engine, "summary");
}

// --- perf command group ------------------------------------------------------

TEST_F(CliRoundTrip, PerfDiffNoiseIsCleanInjectedSlowdownGates) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_,
                 "--stats=" + (dir_ / "base.json").string()}),
            0)
      << err_.str();

  // Deterministic sub-threshold jitter: +10% on every phase sits inside the
  // default 25% relative threshold, so the gate must read it as noise.
  // (Timing a second independent run here instead would make the verdict a
  // coin flip under parallel ctest load.)
  std::string base_text;
  {
    std::ifstream file(dir_ / "base.json");
    std::ostringstream text;
    text << file.rdbuf();
    base_text = text.str();
    auto jittered = obs::RunManifest::from_json_text(base_text);
    for (auto& phase : jittered.phases) phase.wall_ns += phase.wall_ns / 10;
    std::ofstream rewrite(dir_ / "head.json");
    rewrite << jittered.to_json();
  }
  ASSERT_EQ(run({"perf", "diff", (dir_ / "base.json").string(), (dir_ / "head.json").string(),
                 "--no-selftrace"}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("verdict: ok"), std::string::npos);

  // Inject a regression that clears both gate dimensions whatever the base
  // run took: double every phase and add 2 ms (>= 100% relative, > 1 ms
  // absolute floor).
  {
    auto slowed = obs::RunManifest::from_json_text(base_text);
    for (auto& phase : slowed.phases) phase.wall_ns = phase.wall_ns * 2 + 2'000'000;
    std::ofstream rewrite(dir_ / "slow.json");
    rewrite << slowed.to_json();
  }
  out_.str("");
  err_.str("");
  EXPECT_EQ(run({"perf", "diff", (dir_ / "base.json").string(), (dir_ / "slow.json").string(),
                 "--no-selftrace"}),
            3);
  EXPECT_NE(out_.str().find("regressed"), std::string::npos);
  EXPECT_NE(out_.str().find("verdict: REGRESSED"), std::string::npos);

  // --json output is machine-readable and carries the gate verdict.
  EXPECT_EQ(run({"perf", "diff", (dir_ / "base.json").string(), (dir_ / "slow.json").string(),
                 "--no-selftrace", "--json"}),
            3);
  EXPECT_NO_THROW((void)util::parse_json(out_.str()));
  EXPECT_NE(out_.str().find("\"exit_code\": 3"), std::string::npos);
}

TEST_F(CliRoundTrip, PerfExportManifestChromeAndCsv) {
  const auto stats = (dir_ / "run.json").string();
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "4", "--size", "8", "--out", normal_,
                 "--stats=" + stats}),
            0)
      << err_.str();

  ASSERT_EQ(run({"perf", "export", stats}), 0) << err_.str();
  EXPECT_NO_THROW((void)util::parse_json(out_.str()));
  EXPECT_NE(out_.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out_.str().find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(out_.str().find("\"collect\""), std::string::npos);

  ASSERT_EQ(run({"perf", "export", stats, "--format", "csv"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("path,name,depth,count,wall_ns,cpu_ns"), std::string::npos);

  // --out writes the artifact and keeps stdout clean; chatter goes to err.
  const auto artifact = (dir_ / "run.trace.json").string();
  ASSERT_EQ(run({"perf", "export", stats, "--out", artifact}), 0) << err_.str();
  EXPECT_TRUE(out_.str().empty());
  EXPECT_NE(err_.str().find("export written"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(artifact));

  EXPECT_EQ(run({"perf", "export", stats, "--format", "svg"}), 2);
  EXPECT_EQ(run({"perf", "frobnicate"}), 2);
}

TEST_F(CliRoundTrip, PerfSelfTraceExportIsCanonicalAcrossJobs) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "3", "--fault-iteration", "2"}),
            0);

  // The same rank pipeline, self-traced at three pool widths. Which lane a
  // sweep cell lands on is racy (workers and the caller both claim ticks),
  // but the exported *work* is conserved: every job count shows the same
  // number of evaluate/cluster spans, and exactly one rank root.
  const auto count = [](const std::string& text, const std::string& needle) {
    std::size_t n = 0;
    for (auto pos = text.find(needle); pos != std::string::npos; pos = text.find(needle, pos + 1))
      ++n;
    return n;
  };
  std::size_t evaluates = 0;
  for (const std::string jobs : {"1", "2", "8"}) {
    const auto archive = (dir_ / ("self" + jobs + ".dtrc")).string();
    ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", jobs, "--self-trace=" + archive}), 0)
        << err_.str();
    ASSERT_EQ(run({"perf", "export", archive, "--format", "csv"}), 0) << err_.str();
    const auto csv = out_.str();
    EXPECT_EQ(count(csv, ",rank,"), 1u);
    EXPECT_GT(count(csv, ",evaluate,"), 0u);
    EXPECT_EQ(count(csv, ",evaluate,"), count(csv, ",cluster,"));
    if (jobs == "1")
      evaluates = count(csv, ",evaluate,");
    else
      EXPECT_EQ(count(csv, ",evaluate,"), evaluates);
  }

  // At --jobs 1 the whole pipeline is deterministic: two separate runs
  // export byte-identical chrome traces, with canonical lane names and no
  // leaked stream keys.
  const auto rerun = (dir_ / "self1b.dtrc").string();
  ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "1", "--self-trace=" + rerun}), 0);
  ASSERT_EQ(run({"perf", "export", (dir_ / "self1.dtrc").string()}), 0);
  const auto first = out_.str();
  ASSERT_EQ(run({"perf", "export", rerun}), 0);
  EXPECT_EQ(first, out_.str());
  // At --jobs 1 the pool spawns no worker threads (ticks run inline on the
  // caller), so the export is a single canonical "main" lane. Worker-lane
  // naming is pinned by the synthetic-store tests in test_perf.cpp.
  EXPECT_NE(first.find("\"main\""), std::string::npos);
  EXPECT_EQ(first.find("pool worker"), std::string::npos);
}

TEST_F(CliRoundTrip, PerfDiffLocalizesViaRecordedSelfTraces) {
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", normal_}),
            0);
  ASSERT_EQ(run({"collect", "--app", "oddeven", "--nranks", "8", "--size", "8", "--out", faulty_,
                 "--fault", "swapBug", "--fault-proc", "3", "--fault-iteration", "2"}),
            0);

  // Two instrumented runs of the same pipeline, each recording both its
  // manifest and its self-trace; the manifest remembers the archive path.
  for (const std::string tag : {"a", "b"}) {
    ASSERT_EQ(run({"rank", normal_, faulty_, "--jobs", "1",
                   "--stats=" + (dir_ / (tag + ".json")).string(),
                   "--self-trace=" + (dir_ / (tag + ".dtrc")).string()}),
              0)
        << err_.str();
  }
  {
    std::ifstream file(dir_ / "a.json");
    std::ostringstream text;
    text << file.rdbuf();
    EXPECT_EQ(obs::RunManifest::from_json_text(text.str()).self_trace,
              (dir_ / "a.dtrc").string());
  }

  // Generous thresholds pin the verdict regardless of how much scheduling
  // noise separated the two timed runs (the point here is the self-trace
  // localization, not the gate); the divergence section still runs and must
  // find the two recorded pipelines identical.
  ASSERT_EQ(run({"perf", "diff", (dir_ / "a.json").string(), (dir_ / "b.json").string(),
                 "--rel-threshold", "1000", "--abs-floor-ms", "60000"}),
            0)
      << out_.str();
  EXPECT_NE(out_.str().find("self-trace divergence"), std::string::npos);
  EXPECT_NE(out_.str().find("identical"), std::string::npos);
}

TEST_F(CliRoundTrip, StatsCommandRejectsBadManifest) {
  EXPECT_EQ(run({"stats", (dir_ / "missing.json").string()}), 2);
  const auto bad = (dir_ / "bad.json").string();
  {
    std::ofstream file(bad);
    file << "{\"manifest_version\": 99}";
  }
  EXPECT_EQ(run({"stats", bad}), 2);
  EXPECT_NE(err_.str().find("cannot parse manifest"), std::string::npos);
}

}  // namespace
}  // namespace difftrace::cli
