#include "util/matrix.hpp"

#include <gtest/gtest.h>

namespace difftrace::util {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, SquareFactory) {
  const auto m = Matrix::square(4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, ElementAssignment) {
  Matrix m(2, 2);
  m(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
}

TEST(Matrix, ThrowsOnOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), std::out_of_range);
  EXPECT_THROW((void)m(0, 2), std::out_of_range);
}

TEST(Matrix, AbsDiff) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 3.5;
  a(1, 1) = -2.0;
  const auto d = abs_diff(a, b);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, AbsDiffThrowsOnShapeMismatch) {
  EXPECT_THROW((void)abs_diff(Matrix(2, 2), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, RowSum) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(0, 2) = 3.0;
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m(2, 2);
  m(0, 1) = -7.0;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.0);
}

TEST(Matrix, Equality) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  EXPECT_EQ(a, b);
  b(0, 0) = 1.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace difftrace::util
