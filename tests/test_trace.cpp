#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/event.hpp"
#include "trace/registry.hpp"
#include "trace/store.hpp"
#include "trace/writer.hpp"

namespace difftrace::trace {
namespace {

TEST(Event, SymbolRoundTrip) {
  const TraceEvent call{42, EventKind::Call};
  const TraceEvent ret{42, EventKind::Return};
  EXPECT_EQ(symbol_to_event(event_to_symbol(call)), call);
  EXPECT_EQ(symbol_to_event(event_to_symbol(ret)), ret);
  EXPECT_NE(event_to_symbol(call), event_to_symbol(ret));
}

TEST(TraceKey, LabelAndOrdering) {
  const TraceKey a{6, 4};
  EXPECT_EQ(a.label(), "6.4");
  EXPECT_LT((TraceKey{1, 9}), (TraceKey{2, 0}));
  EXPECT_LT((TraceKey{1, 1}), (TraceKey{1, 2}));
}

TEST(Registry, InternIsIdempotent) {
  FunctionRegistry reg;
  const auto a = reg.intern("MPI_Send", Image::MpiLib);
  const auto b = reg.intern("MPI_Send", Image::SystemLib);  // image of later intern ignored
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.info(a).image, Image::MpiLib);
}

TEST(Registry, DenseSequentialIds) {
  FunctionRegistry reg;
  EXPECT_EQ(reg.intern("a"), 0u);
  EXPECT_EQ(reg.intern("b"), 1u);
  EXPECT_EQ(reg.intern("c"), 2u);
}

TEST(Registry, FindAndInfo) {
  FunctionRegistry reg;
  const auto id = reg.intern("main", Image::Main);
  EXPECT_EQ(reg.find("main"), id);
  EXPECT_FALSE(reg.find("missing").has_value());
  EXPECT_EQ(reg.name(id), "main");
  EXPECT_THROW((void)reg.info(99), std::out_of_range);
}

TEST(Registry, SnapshotOrderedById) {
  FunctionRegistry reg;
  reg.intern("x");
  reg.intern("y");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "x");
  EXPECT_EQ(snap[1].name, "y");
}

TEST(Writer, RecordsAndDecodes) {
  TraceWriter writer({0, 0});
  writer.record(EventKind::Call, 1);
  writer.record(EventKind::Call, 2);
  writer.record(EventKind::Return, 2);
  writer.record(EventKind::Return, 1);
  TraceStore store;
  store.absorb(writer);
  const auto events = store.decode({0, 0});
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (TraceEvent{1, EventKind::Call}));
  EXPECT_EQ(events[3], (TraceEvent{1, EventKind::Return}));
}

TEST(Writer, FreezeDropsSubsequentEvents) {
  TraceWriter writer({0, 0});
  writer.record(EventKind::Call, 1);
  writer.freeze();
  writer.record(EventKind::Call, 2);  // a killed process writes nothing more
  EXPECT_TRUE(writer.frozen());
  EXPECT_EQ(writer.event_count(), 1u);
  TraceStore store;
  store.absorb(writer);
  EXPECT_TRUE(store.blob({0, 0}).truncated);
  EXPECT_EQ(store.decode({0, 0}).size(), 1u);
}

TEST(Writer, FreezeIsIdempotent) {
  TraceWriter writer({0, 0});
  writer.freeze();
  writer.freeze();
  EXPECT_TRUE(writer.frozen());
}

TEST(Writer, BytesMidStreamAreDecodable) {
  // The incremental-compression property: a snapshot taken between flushes
  // decodes to everything recorded so far.
  TraceWriter writer({1, 2}, "parlot", /*flush_interval=*/4);
  for (std::uint32_t i = 0; i < 100; ++i) writer.record(EventKind::Call, i % 5);
  const auto snapshot = writer.bytes();
  const auto codec = compress::make_codec("parlot");
  EXPECT_EQ(codec.decoder->decode(snapshot).size(), 100u);
}

TEST(Store, KeysSortedAndContains) {
  TraceStore store;
  store.add_blob({1, 0}, TraceBlob{.codec_name = "null", .event_count = 0});
  store.add_blob({0, 1}, TraceBlob{.codec_name = "null", .event_count = 0});
  const auto keys = store.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (TraceKey{0, 1}));
  EXPECT_TRUE(store.contains({1, 0}));
  EXPECT_FALSE(store.contains({9, 9}));
  EXPECT_THROW((void)store.decode({9, 9}), std::out_of_range);
}

TEST(Store, StatsAggregates) {
  TraceStore store;
  TraceWriter w1({0, 0}, "null");
  TraceWriter w2({1, 0}, "null");
  for (int i = 0; i < 10; ++i) w1.record(EventKind::Call, 3);
  for (int i = 0; i < 30; ++i) w2.record(EventKind::Call, 3);
  store.absorb(w1);
  store.absorb(w2);
  const auto stats = store.stats();
  EXPECT_EQ(stats.trace_count, 2u);
  EXPECT_EQ(stats.total_events, 40u);
  EXPECT_DOUBLE_EQ(stats.mean_events_per_trace, 20.0);
  EXPECT_GT(stats.compression_ratio, 0.0);
}

TEST(Store, SaveLoadRoundTrip) {
  TraceStore store;
  store.registry().intern("main", Image::Main);
  store.registry().intern("MPI_Send", Image::MpiLib);
  TraceWriter writer({2, 3});
  writer.record(EventKind::Call, 0);
  writer.record(EventKind::Call, 1);
  writer.record(EventKind::Return, 1);
  writer.freeze();
  store.absorb(writer);

  const auto path = std::filesystem::temp_directory_path() / "difftrace_store_test.bin";
  store.save(path);
  const auto loaded = TraceStore::load(path);
  std::filesystem::remove(path);

  // Archives are canonical: functions serialize name-sorted (so saved bytes
  // are independent of intern order) and blob streams are remapped to match.
  EXPECT_EQ(loaded.registry().size(), 2u);
  EXPECT_EQ(loaded.registry().name(0), "MPI_Send");
  EXPECT_EQ(loaded.registry().info(0).image, Image::MpiLib);
  EXPECT_EQ(loaded.registry().name(1), "main");
  ASSERT_TRUE(loaded.contains({2, 3}));
  EXPECT_TRUE(loaded.blob({2, 3}).truncated);
  const auto events = loaded.decode({2, 3});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (TraceEvent{1, EventKind::Call}));   // main
  EXPECT_EQ(events[1], (TraceEvent{0, EventKind::Call}));   // MPI_Send
  EXPECT_EQ(events[2], (TraceEvent{0, EventKind::Return}));
}

TEST(Store, SaveIsCanonicalAcrossInternOrder) {
  // Two stores with the same traces but opposite intern order must save
  // byte-identical archives — the racy first-intern order between rank
  // threads must never reach the bytes.
  const auto build = [](bool reversed) {
    TraceStore store;
    if (reversed) {
      store.registry().intern("beta", Image::Main);
      store.registry().intern("alpha", Image::Main);
    } else {
      store.registry().intern("alpha", Image::Main);
      store.registry().intern("beta", Image::Main);
    }
    const auto alpha = *store.registry().find("alpha");
    const auto beta = *store.registry().find("beta");
    TraceWriter writer({0, 0});
    writer.record(EventKind::Call, alpha);
    writer.record(EventKind::Call, beta);
    writer.record(EventKind::Return, beta);
    writer.record(EventKind::Return, alpha);
    writer.flush();
    store.absorb(writer);
    const auto path = std::filesystem::temp_directory_path() /
                      (reversed ? "difftrace_canon_r.bin" : "difftrace_canon_f.bin");
    store.save(path);
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)), {});
    std::filesystem::remove(path);
    return bytes;
  };
  EXPECT_EQ(build(false), build(true));
}

TEST(Store, LoadRejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "difftrace_bogus.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace store";
  }
  EXPECT_THROW((void)TraceStore::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Store, CopyAndMoveSemantics) {
  TraceStore store;
  store.add_blob({0, 0}, TraceBlob{.codec_name = "null", .bytes = {1, 2}, .event_count = 2});
  TraceStore copy = store;
  EXPECT_TRUE(copy.contains({0, 0}));
  TraceStore moved = std::move(store);
  EXPECT_TRUE(moved.contains({0, 0}));
}

}  // namespace
}  // namespace difftrace::trace
