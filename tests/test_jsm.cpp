#include "core/jsm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

TEST(Jaccard, KnownValues) {
  EXPECT_DOUBLE_EQ(jaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard({"a", "b"}, {"c"}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard({"a"}, {}), 0.0);
}

TEST(Jsm, PaperFigureFourShape) {
  // Table IV attribute sets: even traces {4 shared + L0}, odd {4 shared + L1}.
  const std::set<std::string> shared = {"MPI_Init", "MPI_Comm_size", "MPI_Comm_rank", "MPI_Finalize"};
  auto even = shared;
  even.insert("L0");
  auto odd = shared;
  odd.insert("L1");
  const auto m = jsm_from_attributes({even, odd, even, odd});
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0);  // T0 ~ T2
  EXPECT_DOUBLE_EQ(m(1, 3), 1.0);  // T1 ~ T3
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(Jsm, SymmetricWithUnitDiagonal) {
  util::Xoshiro256 rng(3);
  std::vector<std::set<std::string>> attrs(6);
  for (auto& s : attrs)
    for (int i = 0; i < 10; ++i) s.insert("a" + std::to_string(rng.below(15)));
  const auto m = jsm_from_attributes(attrs);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 1.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
      EXPECT_GE(m(i, j), 0.0);
      EXPECT_LE(m(i, j), 1.0);
    }
  }
}

TEST(Jsm, LatticePathMatchesDirectPath) {
  // The concept lattice carries each object's intent, so the JSM computed
  // through it must equal the direct attribute-set JSM.
  const std::vector<std::set<std::string>> attrs = {
      {"a", "b", "c"}, {"a", "b"}, {"a", "c", "d"}, {"b"}, {"a", "b", "c"}};
  FormalContext ctx;
  for (std::size_t g = 0; g < attrs.size(); ++g) {
    ctx.add_object("T" + std::to_string(g));
    for (const auto& a : attrs[g]) ctx.set_incidence(g, a);
  }
  const auto lattice = incremental_lattice(ctx);
  const auto via_lattice = jsm_from_lattice(lattice, attrs.size());
  const auto direct = jsm_from_attributes(attrs);
  for (std::size_t i = 0; i < attrs.size(); ++i)
    for (std::size_t j = 0; j < attrs.size(); ++j)
      EXPECT_NEAR(via_lattice(i, j), direct(i, j), 1e-12) << i << "," << j;
}

TEST(WeightedJaccard, KnownValues) {
  using Freqs = std::map<std::string, std::uint64_t>;
  EXPECT_DOUBLE_EQ(weighted_jaccard(Freqs{{"a", 2}, {"b", 3}}, Freqs{{"a", 2}, {"b", 3}}), 1.0);
  EXPECT_DOUBLE_EQ(weighted_jaccard(Freqs{{"a", 1}}, Freqs{{"b", 1}}), 0.0);
  // min(2,4)+min(0,1) / max(2,4)+max(0,1) = 2/5
  EXPECT_DOUBLE_EQ(weighted_jaccard(Freqs{{"a", 2}}, Freqs{{"a", 4}, {"b", 1}}), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(weighted_jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(weighted_jaccard(Freqs{{"a", 1}}, {}), 0.0);
}

TEST(WeightedJaccard, GradedSensitivityToCountDrift) {
  using Freqs = std::map<std::string, std::uint64_t>;
  const Freqs base{{"loop", 100}};
  const double close = weighted_jaccard(base, Freqs{{"loop", 101}});
  const double far = weighted_jaccard(base, Freqs{{"loop", 200}});
  EXPECT_GT(close, 0.99);
  EXPECT_LT(far, 0.51);
  EXPECT_GT(close, far);
}

TEST(WeightedJaccard, MatrixSymmetricUnitDiagonal) {
  std::vector<std::map<std::string, std::uint64_t>> freqs = {
      {{"a", 3}, {"b", 1}}, {{"a", 1}}, {{"c", 5}}};
  const auto m = jsm_from_frequencies(freqs);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
  }
  EXPECT_DOUBLE_EQ(m(0, 1), 0.25);  // min 1 / max(3+1)
  EXPECT_DOUBLE_EQ(m(0, 2), 0.0);
}

TEST(JsmDiff, IdenticalRunsGiveZero) {
  const std::vector<std::set<std::string>> attrs = {{"a"}, {"a", "b"}, {"c"}};
  const auto m = jsm_from_attributes(attrs);
  const auto d = jsm_diff(m, m);
  EXPECT_DOUBLE_EQ(d.max_abs(), 0.0);
  for (const auto s : suspicion_scores(d)) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(JsmDiff, PerturbedTraceHasHighestRowSum) {
  // "Sky subtraction": trace 1's attribute set changes between runs; its
  // JSM row must change the most.
  const std::vector<std::set<std::string>> normal = {
      {"a", "b", "x"}, {"a", "b", "y"}, {"a", "b", "x"}, {"a", "b", "y"}};
  std::vector<std::set<std::string>> faulty = normal;
  faulty[1] = {"a", "q", "z"};
  const auto d = jsm_diff(jsm_from_attributes(normal), jsm_from_attributes(faulty));
  const auto scores = suspicion_scores(d);
  for (std::size_t i = 0; i < scores.size(); ++i)
    if (i != 1) {
      EXPECT_GT(scores[1], scores[i]);
    }
}

TEST(JsmDiff, BaselineDissimilarityCancelsOut) {
  // Master/worker asymmetry exists in both runs; JSM_D must not flag it.
  const std::set<std::string> master = {"bcast", "reduce", "scan"};
  const std::set<std::string> worker = {"exec", "crit"};
  const std::vector<std::set<std::string>> run = {master, worker, worker, worker};
  const auto d = jsm_diff(jsm_from_attributes(run), jsm_from_attributes(run));
  EXPECT_DOUBLE_EQ(d.max_abs(), 0.0);
}

}  // namespace
}  // namespace difftrace::core
