// Differential parity wall for the check engines: whatever archive the
// tool can produce — every cell of the default apps × faults matrix,
// chaos-salvaged wrecks, watchdog-truncated hangs — `--engine=summary`
// and `--engine=auto` must reach the replay engine's verdicts. Auto is
// held to the strictest bar (byte-identical report, since its fallback
// walks are exact); summary is held to the verdict taxonomy (rule ×
// severity multiset), notes, and exit code, because widening may merge
// repeated witnesses of one finding. Auto must also log every fallback
// it takes, with a reason, on the stream the CLI points at stderr.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/analyze.hpp"
#include "apps/oddeven.hpp"
#include "apps/runner.hpp"
#include "cli/commands.hpp"
#include "trace/chaos.hpp"
#include "trace/op.hpp"
#include "trace/writer.hpp"
#include "util/json.hpp"

namespace difftrace {
namespace {

namespace fs = std::filesystem;

/// Verdict taxonomy of a report: how many diagnostics of each (rule,
/// severity). Summary-mode parity is judged on this, not on rendered
/// bytes — message wording may cite different witnesses.
std::map<std::pair<std::string, int>, std::size_t> taxonomy(const analyze::CheckReport& report) {
  std::map<std::pair<std::string, int>, std::size_t> counts;
  for (const auto& d : report.diagnostics)
    ++counts[{d.rule, static_cast<int>(d.severity)}];
  return counts;
}

std::string describe(const std::map<std::pair<std::string, int>, std::size_t>& counts) {
  std::ostringstream os;
  for (const auto& [key, n] : counts)
    os << key.first << "/sev" << key.second << " x" << n << "; ";
  return os.str();
}

/// The parity contract, library level: replay is the oracle.
void expect_engine_parity(const trace::TraceStore& store, const std::string& label) {
  analyze::CheckOptions replay_opts;
  replay_opts.engine = analyze::CheckEngine::Replay;
  const auto replay = analyze::run_checks(store, replay_opts);

  std::ostringstream fallback_log;
  analyze::CheckOptions auto_opts;
  auto_opts.engine = analyze::CheckEngine::Auto;
  auto_opts.fallback_log = &fallback_log;
  const auto autod = analyze::run_checks(store, auto_opts);

  analyze::CheckOptions summary_opts;
  summary_opts.engine = analyze::CheckEngine::Summary;
  const auto summary = analyze::run_checks(store, summary_opts);

  // Auto = exact facts from the IR with scoped concrete walks: the whole
  // report must be byte-identical, severity capping included.
  EXPECT_EQ(autod.render(), replay.render()) << label << " (auto vs replay)";
  EXPECT_EQ(autod.exit_code(), replay.exit_code()) << label;
  EXPECT_EQ(autod.events_checked, replay.events_checked) << label;

  // Summary = widened: same verdicts, same exit code, same notes.
  EXPECT_EQ(summary.exit_code(), replay.exit_code()) << label;
  EXPECT_EQ(taxonomy(summary), taxonomy(replay))
      << label << "\n  summary: " << describe(taxonomy(summary))
      << "\n  replay:  " << describe(taxonomy(replay));
  EXPECT_EQ(summary.notes, replay.notes) << label;
  EXPECT_EQ(summary.streams_checked, replay.streams_checked) << label;
}

class CheckParity : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("difftrace_parity_" + std::to_string(::getpid()) + "_" + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run(const std::vector<std::string>& argv) {
    out_.str("");
    err_.str("");
    return cli::run_command(argv, out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

/// A deterministic archive the summaries cannot fully compose: each rank
/// runs an outer loop whose body holds more collective instances than
/// kMaxBodyCollInstances (an inner allreduce loop), so the mpi family of
/// every stream is Approx and auto must take its concrete fallback. The
/// run itself is clean — both ranks participate identically.
trace::TraceStore trace_coll_overflow() {
  trace::TraceStore store;
  const auto main_fn = store.registry().intern("main", trace::Image::Main);
  const auto step_fn = store.registry().intern("step", trace::Image::Main);
  const auto allreduce = store.registry().intern("MPI_Allreduce", trace::Image::MpiLib);
  for (int rank = 0; rank < 2; ++rank) {
    trace::TraceWriter w({rank, 0}, "null");
    w.record(trace::EventKind::Call, main_fn);
    for (int outer = 0; outer < 3; ++outer) {
      w.record(trace::EventKind::Call, step_fn);
      for (int inner = 0; inner < 1100; ++inner) {
        w.record(trace::EventKind::Call, allreduce);
        w.annotate({.code = trace::OpCode::CollEnter,
                    .peer = 0,
                    .count = 1,
                    .coll = 3,
                    .dtype = 1,
                    .redop = 1,
                    .detail = "MPI_Allreduce"});
        w.record(trace::EventKind::Return, allreduce);
      }
      w.record(trace::EventKind::Return, step_fn);
    }
    w.record(trace::EventKind::Return, main_fn);
    store.absorb(w);
  }
  return store;
}

trace::TraceStore trace_odd_even(apps::FaultSpec fault) {
  simmpi::WorldConfig world;
  world.nranks = 4;
  world.watchdog_poll = std::chrono::milliseconds(5);
  apps::OddEvenConfig config;
  config.nranks = world.nranks;
  config.elements_per_rank = 8;
  config.fault = fault;
  auto run = apps::run_traced(world, [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); });
  return std::move(run.store);
}

// --- the full matrix, all engines --------------------------------------------

TEST_F(CheckParity, EveryDefaultMatrixArchiveAgreesAcrossEngines) {
  // Re-run the default apps × faults grid and keep every cell's archive:
  // completed runs, silent faults, and watchdog-truncated hangs alike.
  const auto keep = (dir_ / "archives").string();
  ASSERT_EQ(run({"matrix", "--out", (dir_ / "matrix.json").string(), "--quiet",
                 "--cell-timeout-ms", "8000", "--keep-archives", keep}),
            0)
      << err_.str();

  std::vector<std::string> archives;
  for (const auto& entry : fs::directory_iterator(keep))
    if (entry.path().extension() == ".dtrc") archives.push_back(entry.path().string());
  std::sort(archives.begin(), archives.end());
  // The default grid is 8 apps × 15 fault plans = 120 cells; every cell
  // that actually ran (completed or hung — skipped cells are app/fault
  // pairs the app does not implement) must have left an archive to grade.
  std::ifstream report_in(dir_ / "matrix.json");
  std::ostringstream report_text;
  report_text << report_in.rdbuf();
  const auto report = util::parse_json(report_text.str());
  ASSERT_EQ(report.at("cells").array.size(), 120u);
  std::size_t ran = 0;
  for (const auto& cell : report.at("cells").array)
    if (cell.at("run").as_string() != "skipped") ++ran;
  ASSERT_EQ(archives.size(), ran);
  ASSERT_GE(archives.size(), 70u);

  for (const auto& path : archives) {
    SCOPED_TRACE(path);
    const auto store = trace::TraceStore::load(path);
    expect_engine_parity(store, fs::path(path).filename().string());
  }
}

// --- damaged evidence ---------------------------------------------------------

TEST_F(CheckParity, ChaosSalvagedArchivesKeepParity) {
  // Degraded evidence is where an abstract engine is most tempted to
  // disagree with replay (missing op records, torn streams, capped
  // severities). Salvage whatever chaos leaves and hold the line anyway.
  const auto clean_path = dir_ / "clean.dtr";
  const auto faulty_path = dir_ / "faulty.dtr";
  trace_odd_even({}).save(clean_path);
  trace_odd_even({apps::FaultType::DlBug, 1, -1, 1}).save(faulty_path);

  for (const auto& src : {clean_path, faulty_path}) {
    const auto archive = trace::chaos_read_file(src);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto corrupted = trace::chaos_random(archive, seed);
      const auto bad_path = dir_ / "damaged.dtr";
      trace::chaos_write_file(bad_path, corrupted.bytes);
      const auto result = trace::TraceStore::salvage(bad_path);
      expect_engine_parity(result.store, src.filename().string() + " seed " +
                                             std::to_string(seed) + " (" +
                                             corrupted.description + ")");
    }
  }
}

// --- CLI surface --------------------------------------------------------------

TEST_F(CheckParity, CliEnginesMatchOnStdoutAndExitCode) {
  const auto path = (dir_ / "faulty.dtr").string();
  trace_odd_even({apps::FaultType::DlBug, 1, -1, 1}).save(path);

  const int replay_exit = run({"check", path, "--engine=replay"});
  const std::string replay_stdout = out_.str();
  EXPECT_EQ(replay_exit, 1);

  const int auto_exit = run({"check", path, "--engine=auto"});
  EXPECT_EQ(auto_exit, replay_exit);
  EXPECT_EQ(out_.str(), replay_stdout);

  const int summary_exit = run({"check", path, "--engine=summary"});
  EXPECT_EQ(summary_exit, replay_exit);
}

TEST_F(CheckParity, AutoLogsEveryFallbackWithAReason) {
  // An outer loop body holding more collective instances than the summary
  // cap defeats the mpi summaries on every stream, so auto must take
  // concrete walks — and say so, once per fallback, on stderr. (A
  // hand-built archive, not a collected one: the threaded apps' trace
  // shape is scheduler-dependent, so whether their loops summarize
  // exactly varies run to run.)
  const auto path = (dir_ / "overflow.dtrc").string();
  trace_coll_overflow().save(path);

  const int replay_exit = run({"check", path, "--engine=replay"});
  const std::string replay_stdout = out_.str();
  EXPECT_EQ(replay_exit, 0) << out_.str();

  const int auto_exit = run({"check", path, "--engine=auto"});
  EXPECT_EQ(auto_exit, replay_exit);
  EXPECT_EQ(out_.str(), replay_stdout);

  // Every fallback line names the stream it re-walked and why; both
  // ranks' mpi families are undecidable here, so both must appear.
  std::istringstream err_lines(err_.str());
  std::string line;
  std::size_t fallbacks = 0;
  while (std::getline(err_lines, line)) {
    if (line.rfind("[fallback] ", 0) != 0) continue;
    ++fallbacks;
    EXPECT_NE(line.find("stream "), std::string::npos) << line;
    // The reason clause follows the stream key; it must be non-empty
    // prose, not a bare tag.
    EXPECT_GT(line.size(), std::string("[fallback] stream 0.0 ").size()) << line;
  }
  EXPECT_GE(fallbacks, 2u) << err_.str();

  // Summary on the same archive widens instead of re-walking, but the
  // verdict taxonomy still has to match replay's.
  const auto store = trace::TraceStore::load(path);
  expect_engine_parity(store, "collective-overflow archive");
}

TEST_F(CheckParity, SummaryCacheRoundTripIsStableAndHits) {
  const auto path = (dir_ / "clean.dtr").string();
  trace_odd_even({}).save(path);
  const auto cache = (dir_ / "cache").string();
  const auto cold_stats = (dir_ / "cold.json").string();
  const auto warm_stats = (dir_ / "warm.json").string();

  ASSERT_EQ(run({"check", path, "--engine=auto", "--cache=" + cache, "--stats=" + cold_stats}), 0)
      << err_.str();
  const std::string cold_stdout = out_.str();
  ASSERT_EQ(run({"check", path, "--engine=auto", "--cache=" + cache, "--stats=" + warm_stats}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), cold_stdout);

  const auto load_json = [](const std::string& p) {
    std::ifstream in(p);
    std::ostringstream text;
    text << in.rdbuf();
    return util::parse_json(text.str());
  };
  const auto cold = load_json(cold_stats);
  const auto warm = load_json(warm_stats);
  EXPECT_EQ(cold.at("check_engine").as_string(), "auto");
  EXPECT_EQ(warm.at("check_engine").as_string(), "auto");
  EXPECT_GT(cold.at("summary_cache_misses").as_int(), 0);
  EXPECT_EQ(cold.at("summary_cache_hits").as_int(), 0);
  EXPECT_GT(warm.at("summary_cache_hits").as_int(), 0);
  EXPECT_EQ(warm.at("summary_cache_misses").as_int(), 0);
}

}  // namespace
}  // namespace difftrace
