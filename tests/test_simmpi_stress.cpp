// Randomized stress/property tests for the simulated MPI runtime: message
// storms with deterministic expected delivery, mixed eager/rendezvous
// payloads, random collective schedules, and watchdog behaviour under load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <span>
#include <vector>

#include "simmpi/runtime.hpp"
#include "util/prng.hpp"

namespace difftrace::simmpi {
namespace {

WorldConfig fast_world(int nranks, std::size_t eager_limit = 4096) {
  WorldConfig config;
  config.nranks = nranks;
  config.eager_limit = eager_limit;
  config.watchdog_poll = std::chrono::milliseconds(5);
  config.wall_timeout = std::chrono::milliseconds(60'000);
  return config;
}

struct StormParam {
  int nranks;
  int messages_per_rank;
  std::size_t eager_limit;  // small => rendezvous mixes in
  std::uint64_t seed;
};

class MessageStorm : public ::testing::TestWithParam<StormParam> {};

// Every rank isends `messages_per_rank` messages to pseudo-random
// destinations (tag = destination rank); sizes straddle the eager limit.
// Nonblocking sends deposit immediately, so every rank can post its whole
// schedule, then drain its expected messages in per-source FIFO order, and
// only wait on rendezvous completions at the end — a pattern that cannot
// deadlock regardless of the schedule. (Blocking-send storms with ordered
// drains CAN legitimately deadlock under rendezvous; and our World models
// MPI_THREAD_FUNNELED, one blocking MPI call per rank at a time.)
TEST_P(MessageStorm, AllMessagesDeliveredInPerSourceOrder) {
  const auto p = GetParam();
  const int n = p.nranks;

  // Precompute the schedule (deterministic from the seed, same on all ranks).
  // schedule[src] = list of (dst, payload_size, payload_seed)
  std::vector<std::vector<std::tuple<int, std::size_t, std::uint32_t>>> schedule(
      static_cast<std::size_t>(n));
  util::Xoshiro256 rng(p.seed);
  for (int src = 0; src < n; ++src)
    for (int m = 0; m < p.messages_per_rank; ++m) {
      const int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const std::size_t size = 1 + rng.below(2 * p.eager_limit / sizeof(std::int32_t) + 4);
      schedule[static_cast<std::size_t>(src)].emplace_back(dst, size,
                                                           static_cast<std::uint32_t>(rng()));
    }

  const auto report = run_world(fast_world(n, p.eager_limit), [&](Comm& comm) {
    const int me = comm.rank();
    // Expected incoming (size, seed) per source, from the shared schedule.
    std::vector<std::vector<std::pair<std::size_t, std::uint32_t>>> expected(
        static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src)
      for (const auto& [dst, size, seed] : schedule[static_cast<std::size_t>(src)])
        if (dst == me) expected[static_cast<std::size_t>(src)].emplace_back(size, seed);

    // Post the whole send schedule without blocking.
    std::vector<Request> pending;
    for (const auto& [dst, size, seed] : schedule[static_cast<std::size_t>(me)]) {
      std::vector<std::int32_t> payload(size);
      for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::int32_t>(seed + static_cast<std::uint32_t>(i));
      pending.push_back(comm.isend(std::span<const std::int32_t>(payload), dst, /*tag=*/dst));
    }

    // Drain each source FIFO; sizes and fills must match the schedule in order.
    for (int src = 0; src < n; ++src) {
      for (const auto& [size, seed] : expected[static_cast<std::size_t>(src)]) {
        std::vector<std::int32_t> buf(size);
        const auto got = comm.recv(std::span<std::int32_t>(buf), src, /*tag=*/me);
        ASSERT_EQ(got, size);
        for (std::size_t i = 0; i < size; ++i)
          ASSERT_EQ(buf[i], static_cast<std::int32_t>(seed + static_cast<std::uint32_t>(i)));
      }
    }
    for (auto& req : pending) comm.wait(req);
  });
  EXPECT_TRUE(report.all_completed()) << report.deadlock_info;
  EXPECT_FALSE(report.deadlock);
}

INSTANTIATE_TEST_SUITE_P(Storms, MessageStorm,
                         ::testing::Values(StormParam{2, 20, 64, 1}, StormParam{4, 12, 64, 2},
                                           StormParam{8, 8, 32, 3}, StormParam{4, 25, 8, 4},
                                           StormParam{6, 10, 4096, 5}, StormParam{3, 40, 16, 6}),
                         [](const ::testing::TestParamInfo<StormParam>& info) {
                           return "n" + std::to_string(info.param.nranks) + "_m" +
                                  std::to_string(info.param.messages_per_rank) + "_e" +
                                  std::to_string(info.param.eager_limit) + "_s" +
                                  std::to_string(info.param.seed);
                         });

class CollectiveSchedule : public ::testing::TestWithParam<std::uint64_t> {};

// A random but rank-consistent schedule of collectives must complete with
// correct results at every step.
TEST_P(CollectiveSchedule, RandomSequencesComplete) {
  const auto seed = GetParam();
  const int n = 5;
  // Build the schedule once (same for every rank).
  enum class Op { Barrier, BcastFromK, SumAll, MinAll, ReduceToK };
  std::vector<std::pair<Op, int>> schedule;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 40; ++i) {
    const auto pick = rng.below(5);
    const int root = static_cast<int>(rng.below(n));
    schedule.emplace_back(static_cast<Op>(pick), root);
  }

  const auto report = run_world(fast_world(n), [&](Comm& comm) {
    const int me = comm.rank();
    for (std::size_t step = 0; step < schedule.size(); ++step) {
      const auto [op, root] = schedule[step];
      const double mine = static_cast<double>(me + 1) * static_cast<double>(step + 1);
      switch (op) {
        case Op::Barrier:
          comm.barrier();
          break;
        case Op::BcastFromK: {
          double value = me == root ? mine : -1.0;
          comm.bcast(std::span<double>(&value, 1), root);
          EXPECT_DOUBLE_EQ(value, static_cast<double>(root + 1) * static_cast<double>(step + 1));
          break;
        }
        case Op::SumAll: {
          const double sum = comm.allreduce_value(mine, ReduceOp::Sum);
          EXPECT_DOUBLE_EQ(sum, 15.0 * static_cast<double>(step + 1));  // 1+..+5 = 15
          break;
        }
        case Op::MinAll: {
          const double min = comm.allreduce_value(mine, ReduceOp::Min);
          EXPECT_DOUBLE_EQ(min, static_cast<double>(step + 1));
          break;
        }
        case Op::ReduceToK: {
          double out = -1.0;
          comm.reduce(std::span<const double>(&mine, 1), std::span<double>(&out, 1), ReduceOp::Max,
                      root);
          if (me == root) {
          EXPECT_DOUBLE_EQ(out, 5.0 * static_cast<double>(step + 1));
        }
          break;
        }
      }
    }
  });
  EXPECT_TRUE(report.all_completed()) << report.deadlock_info;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveSchedule, ::testing::Values(11, 22, 33, 44, 55));

TEST(SimMpiStress, InterleavedPointToPointAndCollectives) {
  const auto report = run_world(fast_world(6), [](Comm& comm) {
    const int n = comm.size();
    const int me = comm.rank();
    for (int round = 0; round < 10; ++round) {
      // Ring shift.
      comm.send_value<std::int32_t>(me * 100 + round, (me + 1) % n, round);
      const auto got = comm.recv_value<std::int32_t>((me + n - 1) % n, round);
      EXPECT_EQ(got, ((me + n - 1) % n) * 100 + round);
      // Then a collective that would hang if any rank were out of step.
      const auto total = comm.allreduce_value(std::int32_t{1}, ReduceOp::Sum);
      EXPECT_EQ(total, n);
    }
  });
  EXPECT_TRUE(report.all_completed());
}

TEST(SimMpiStress, WatchdogFindsDeadlockBuriedUnderTraffic) {
  // Lots of healthy traffic, then rank 3 waits for a message that never
  // comes; everyone else proceeds to the finalize barrier.
  const auto report = run_world(fast_world(5), [](Comm& comm) {
    const int n = comm.size();
    const int me = comm.rank();
    for (int round = 0; round < 20; ++round) {
      comm.send_value<std::int32_t>(round, (me + 1) % n, 1);
      (void)comm.recv_value<std::int32_t>((me + n - 1) % n, 1);
    }
    if (comm.rank() == 3) {
      std::int32_t v = 0;
      (void)comm.recv(std::span<std::int32_t>(&v, 1), 0, 0xDEAD);
    }
    comm.barrier();
  });
  EXPECT_TRUE(report.deadlock);
  EXPECT_NE(report.deadlock_info.find("rank 3 in MPI_Recv"), std::string::npos);
  EXPECT_EQ(report.ranks[3].status, RankStatus::Aborted);
}

TEST(SimMpiStress, ManySmallWorldsSequentially) {
  // Runtime must be fully reusable: no leaked global state between worlds.
  for (int round = 0; round < 25; ++round) {
    const auto report = run_world(fast_world(3), [round](Comm& comm) {
      const auto sum = comm.allreduce_value(static_cast<std::int64_t>(comm.rank() + round),
                                            ReduceOp::Sum);
      EXPECT_EQ(sum, 3 + 3 * round);
    });
    ASSERT_TRUE(report.all_completed());
  }
}

}  // namespace
}  // namespace difftrace::simmpi
