#include "core/report.hpp"

#include <gtest/gtest.h>

#include "apps/oddeven.hpp"
#include "apps/runner.hpp"

namespace difftrace::core {
namespace {

trace::TraceStore trace_odd_even(apps::FaultSpec fault) {
  apps::OddEvenConfig config;
  config.nranks = 16;
  config.elements_per_rank = 8;
  config.fault = fault;
  simmpi::WorldConfig world;
  world.nranks = 16;
  world.watchdog_poll = std::chrono::milliseconds(5);
  auto run = apps::run_traced(world,
                              [config](simmpi::Comm& c) { apps::odd_even_rank(c, config); });
  return std::move(run.store);
}

TEST(Report, SwapBugReportHasAllSections) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::SwapBug, 5, -1, 7});

  ReportConfig config;
  config.sweep.filters = {FilterSpec::mpi_all(), FilterSpec::mpi_send_recv()};
  const auto report = build_report(normal, faulty, config);

  EXPECT_EQ(report.triage.bug_class, BugClass::StructuralChange);
  EXPECT_EQ(report.ranking.consensus_thread(), "5.0");
  ASSERT_FALSE(report.suspects.empty());
  EXPECT_EQ(report.suspects.front(), (trace::TraceKey{5, 0}));

  const auto& text = report.text;
  EXPECT_NE(text.find("--- triage ---"), std::string::npos);
  EXPECT_NE(text.find("--- ranking"), std::string::npos);
  EXPECT_NE(text.find("--- progress"), std::string::npos);
  EXPECT_NE(text.find("--- diffNLR(5.0) ---"), std::string::npos);
  EXPECT_NE(text.find("structural-change"), std::string::npos);
  EXPECT_NE(text.find("^16"), std::string::npos);  // the Figure-5 loop
}

TEST(Report, DlBugReportShowsHangAndTruncation) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::DlBug, 5, -1, 7});

  ReportConfig config;
  config.sweep.filters = {FilterSpec::mpi_all()};
  const auto report = build_report(normal, faulty, config);

  EXPECT_EQ(report.triage.bug_class, BugClass::Hang);
  EXPECT_NE(report.text.find("watchdog-truncated"), std::string::npos);
  EXPECT_NE(report.text.find("least progressed: 5.0"), std::string::npos);
}

TEST(Report, IdenticalRunsReportNoAnomaly) {
  const auto normal = trace_odd_even({});
  ReportConfig config;
  config.sweep.filters = {FilterSpec::mpi_all()};
  const auto report = build_report(normal, normal, config);
  EXPECT_EQ(report.triage.bug_class, BugClass::NoAnomaly);
  EXPECT_TRUE(report.suspects.empty());
  EXPECT_EQ(report.text.find("--- diffNLR"), std::string::npos);
}

TEST(Report, SideBySideOptionChangesLayout) {
  const auto normal = trace_odd_even({});
  const auto faulty = trace_odd_even({apps::FaultType::SwapBug, 5, -1, 7});
  ReportConfig config;
  config.sweep.filters = {FilterSpec::mpi_all()};
  config.side_by_side = true;
  config.diffnlr_count = 1;
  const auto report = build_report(normal, faulty, config);
  // The two-column layout's separator rule only appears in side-by-side mode.
  EXPECT_NE(report.text.find("|--"), std::string::npos);
  EXPECT_NE(report.text.find("faulty"), std::string::npos);
}

}  // namespace
}  // namespace difftrace::core
