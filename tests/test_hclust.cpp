#include "core/hclust.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/prng.hpp"

namespace difftrace::core {
namespace {

util::Matrix dist_from(const std::vector<std::vector<double>>& rows) {
  const auto n = rows.size();
  util::Matrix m = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rows[i][j];
  return m;
}

/// Two tight pairs far apart: {0,1} and {2,3}.
util::Matrix two_pairs() {
  return dist_from({{0.0, 0.1, 5.0, 5.0},
                    {0.1, 0.0, 5.0, 5.0},
                    {5.0, 5.0, 0.0, 0.2},
                    {5.0, 5.0, 0.2, 0.0}});
}

TEST(Linkage, SingleOnKnownExample) {
  // Points on a line at 0, 1, 3, 7 (distances |xi - xj|).
  const auto d = dist_from({{0, 1, 3, 7}, {1, 0, 2, 6}, {3, 2, 0, 4}, {7, 6, 4, 0}});
  const auto z = linkage(d, Linkage::Single);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0].height, 1.0);  // {0,1}
  EXPECT_DOUBLE_EQ(z[1].height, 2.0);  // {0,1}+{2}: min(2,3) = 2
  EXPECT_DOUBLE_EQ(z[2].height, 4.0);  // +{3}: min(6,7,4) = 4
  EXPECT_EQ(z[2].size, 4u);
}

TEST(Linkage, CompleteOnKnownExample) {
  const auto d = dist_from({{0, 1, 3, 7}, {1, 0, 2, 6}, {3, 2, 0, 4}, {7, 6, 4, 0}});
  const auto z = linkage(d, Linkage::Complete);
  EXPECT_DOUBLE_EQ(z[0].height, 1.0);
  EXPECT_DOUBLE_EQ(z[1].height, 3.0);  // max(2,3)
  EXPECT_DOUBLE_EQ(z[2].height, 7.0);  // max(7,6,4)
}

TEST(Linkage, AverageOnKnownExample) {
  const auto d = dist_from({{0, 1, 3, 7}, {1, 0, 2, 6}, {3, 2, 0, 4}, {7, 6, 4, 0}});
  const auto z = linkage(d, Linkage::Average);
  EXPECT_DOUBLE_EQ(z[1].height, 2.5);           // (3+2)/2
  EXPECT_DOUBLE_EQ(z[2].height, (7.0 + 6 + 4) / 3);
}

TEST(Linkage, WardMatchesScipyOnTwoPairs) {
  // SciPy: ward on this matrix merges (0,1)@0.1, (2,3)@0.2, then
  // d = sqrt(((1+1)*25 + (1+1)*25 - ... ) ...) — verified value below.
  const auto z = linkage(two_pairs(), Linkage::Ward);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0].height, 0.1);
  EXPECT_DOUBLE_EQ(z[1].height, 0.2);
  // Lance-Williams ward with the recorded inter-pair distances:
  // step1: d({01},2) = sqrt((2*25 + 1*25 - 1*0.01)/3), same for 3;
  // step2: combine with d({01},{23}).
  // step1: d({01},k)² = (2·25 + 2·25 − 0.01)/3 = 33.33 for k ∈ {2,3};
  // step2: d({01},{23})² = (3·33.33 + 3·33.33 − 2·0.04)/4 = 49.975.
  EXPECT_NEAR(z[2].height, std::sqrt(49.975), 1e-9);
}

class AllLinkagesFixture : public ::testing::TestWithParam<Linkage> {};

TEST_P(AllLinkagesFixture, TwoTightPairsClusterFirst) {
  const auto z = linkage(two_pairs(), GetParam());
  ASSERT_EQ(z.size(), 3u);
  // First two merges must be the tight pairs (in either order).
  const auto is_pair = [](const Merge& m) {
    return (m.a == 0 && m.b == 1) || (m.a == 1 && m.b == 0) || (m.a == 2 && m.b == 3) ||
           (m.a == 3 && m.b == 2);
  };
  EXPECT_TRUE(is_pair(z[0]));
  EXPECT_TRUE(is_pair(z[1]));
  const auto labels = cut_to_k(z, 4, 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST_P(AllLinkagesFixture, MergeIdsFollowScipyConvention) {
  const auto z = linkage(two_pairs(), GetParam());
  // The last merge joins the two pair-clusters created by merges 0 and 1,
  // i.e. ids n+0 = 4 and n+1 = 5.
  EXPECT_EQ(std::min(z[2].a, z[2].b), 4u);
  EXPECT_EQ(std::max(z[2].a, z[2].b), 5u);
  EXPECT_EQ(z[2].size, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, AllLinkagesFixture, ::testing::ValuesIn(all_linkages()),
                         [](const ::testing::TestParamInfo<Linkage>& info) {
                           return std::string(linkage_name(info.param));
                         });

TEST(Linkage, MonotoneMethodsHaveNondecreasingHeights) {
  util::Xoshiro256 rng(17);
  const std::size_t n = 12;
  util::Matrix d = util::Matrix::square(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) d(i, j) = d(j, i) = 0.1 + rng.uniform();
  for (const auto method : {Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Weighted,
                            Linkage::Ward}) {
    const auto z = linkage(d, method);
    for (std::size_t i = 1; i < z.size(); ++i)
      EXPECT_GE(z[i].height + 1e-12, z[i - 1].height) << linkage_name(method);
  }
}

TEST(Linkage, RejectsNonSquare) {
  EXPECT_THROW((void)linkage(util::Matrix(2, 3), Linkage::Single), std::invalid_argument);
}

TEST(Linkage, SingletonAndEmpty) {
  EXPECT_TRUE(linkage(util::Matrix::square(1), Linkage::Ward).empty());
  EXPECT_TRUE(linkage(util::Matrix::square(0), Linkage::Ward).empty());
}

TEST(CutToK, FullRangeOfK) {
  const auto z = linkage(two_pairs(), Linkage::Average);
  EXPECT_EQ(cut_to_k(z, 4, 1), (std::vector<int>{0, 0, 0, 0}));
  const auto k4 = cut_to_k(z, 4, 4);
  EXPECT_EQ(k4, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_THROW((void)cut_to_k(z, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)cut_to_k(z, 4, 5), std::invalid_argument);
}

TEST(CutToK, LabelsInFirstAppearanceOrder) {
  const auto z = linkage(two_pairs(), Linkage::Complete);
  const auto labels = cut_to_k(z, 4, 2);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[2], 1);
}

TEST(SimilarityToDistance, InvertsAndSymmetrizes) {
  util::Matrix s = util::Matrix::square(2, 1.0);
  s(0, 1) = 0.3;
  s(1, 0) = 0.5;  // slightly asymmetric input
  const auto d = similarity_to_distance(s);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.6);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.6);
}

}  // namespace
}  // namespace difftrace::core
